package experiments

import (
	"fmt"
	"math"

	"sentinel3d/internal/charlab"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
)

// ---------------------------------------------------------------------------
// Figure 13: read retry counts, current flash vs sentinel.

// Fig13Result holds the per-wordline retry counts on the aged TLC block.
type Fig13Result struct {
	// Per-wordline MSB-page retry counts (the paper's most vulnerable
	// page).
	TableRetries    []int
	SentinelRetries []int
	TableFails      int
	SentinelFails   int
	TableLatencyUS  float64
	SentLatencyUS   float64
}

// Fig13RetryCount reproduces the paper's headline comparison: a TLC block
// at P/E 5000 with one-year retention, read wordline by wordline with the
// static vendor table versus the sentinel policy.
func Fig13RetryCount(s Scale) (*Fig13Result, error) {
	model, err := s.TrainModel(flash.TLC, 113)
	if err != nil {
		return nil, err
	}
	cfg := s.ChipConfig(flash.TLC, 213)
	eng, err := s.Engine(model, cfg)
	if err != nil {
		return nil, err
	}
	chip, err := s.BuildEvalChip(flash.TLC, 213, eng, 5000, physics.YearHours)
	if err != nil {
		return nil, err
	}
	ctl, err := s.Controller(chip, s.MaxRetries)
	if err != nil {
		return nil, err
	}
	table := retry.NewDefaultTable(chip, s.TableStep)
	sent := retry.NewSentinelPolicy(eng)
	res := &Fig13Result{}
	msb := chip.Coding().Bits() - 1
	type wlRead struct{ table, sent retry.Result }
	reads := parallel.Map(cfg.WordlinesPerBlock(), func(wl int) wlRead {
		return wlRead{
			table: ctl.Read(0, wl, msb, table, mathx.Mix(0x13a, uint64(wl))),
			sent:  ctl.Read(0, wl, msb, sent, mathx.Mix(0x13b, uint64(wl))),
		}
	})
	for _, r := range reads {
		res.TableRetries = append(res.TableRetries, r.table.Retries)
		res.SentinelRetries = append(res.SentinelRetries, r.sent.Retries)
		res.TableLatencyUS += r.table.Latency
		res.SentLatencyUS += r.sent.Latency
		if !r.table.OK {
			res.TableFails++
		}
		if !r.sent.OK {
			res.SentinelFails++
		}
	}
	return res, nil
}

// Averages returns the mean retry counts and the reduction fraction.
func (r *Fig13Result) Averages() (table, sentinel, reduction float64) {
	var ts, ss float64
	for i := range r.TableRetries {
		ts += float64(r.TableRetries[i])
		ss += float64(r.SentinelRetries[i])
	}
	n := float64(len(r.TableRetries))
	table, sentinel = ts/n, ss/n
	if table > 0 {
		reduction = 1 - sentinel/table
	}
	return table, sentinel, reduction
}

// Render prints the comparison.
func (r *Fig13Result) Render() string {
	t, se, red := r.Averages()
	return fmt.Sprintf("Fig 13 (TLC, P/E 5000, 1 yr): MSB read retries per wordline\n"+
		"  current flash: avg %.2f retries (%d unreadable)\n"+
		"  sentinel:      avg %.2f retries (%d unreadable)\n"+
		"  retry reduction: %.0f%% (paper: 82%%, 6.6 -> 1.2)\n"+
		"  latency reduction on this block: %.0f%%\n",
		t, r.TableFails, se, r.SentinelFails, red*100,
		100*(1-r.SentLatencyUS/r.TableLatencyUS))
}

// ---------------------------------------------------------------------------
// Figures 15-18: per-voltage error counts and inference success.

// ErrCompResult holds per-voltage, per-wordline error counts under the
// competing voltage-selection methods, covering Figures 15, 16, 17 and 18.
type ErrCompResult struct {
	Kind flash.Kind
	// Errors[method][v-1][wl]; methods indexed by the Method* constants.
	Errors [4][][]int
	// TrackingErrors[v-1][wl] for the Figure 18 baseline.
	TrackingErrors [][]int
}

// Method indices into ErrCompResult.Errors.
const (
	MethodDefault = iota
	MethodInferred
	MethodCalibrated
	MethodOptimal
)

// MethodNames for rendering.
var MethodNames = [4]string{"default", "inferred", "calibrated", "optimal"}

// ErrorComparison ages a block (TLC: P/E 5000; QLC: P/E 1000; one year)
// and measures the error count of every read voltage per wordline under
// default, inferred, calibrated, tracked, and optimal offsets.
func ErrorComparison(s Scale, kind flash.Kind) (*ErrCompResult, error) {
	model, err := s.TrainModel(kind, 116)
	if err != nil {
		return nil, err
	}
	cfg := s.ChipConfig(kind, 216)
	eng, err := s.Engine(model, cfg)
	if err != nil {
		return nil, err
	}
	pe := 5000
	if kind == flash.QLC {
		pe = 1000
	}
	chip, err := s.BuildEvalChip(kind, 216, eng, pe, physics.YearHours)
	if err != nil {
		return nil, err
	}
	ctl, err := s.Controller(chip, s.MaxRetries)
	if err != nil {
		return nil, err
	}
	lab := charlab.New(chip)
	sent := retry.NewSentinelPolicy(eng)
	tracking := retry.NewTracking(retry.NewDefaultTable(chip, s.TableStep))
	if err := tracking.UpdateBlock(chip, 0, 0); err != nil {
		return nil, err
	}
	tracked := tracking.Tracked(0)

	nv := chip.Coding().NumVoltages()
	res := &ErrCompResult{Kind: kind}
	msb := chip.Coding().Bits() - 1
	sv := model.SentinelVoltage
	nwl := cfg.WordlinesPerBlock()
	for m := range res.Errors {
		res.Errors[m] = make([][]int, nv)
		for v := 0; v < nv; v++ {
			res.Errors[m][v] = make([]int, nwl)
		}
	}
	res.TrackingErrors = make([][]int, nv)
	for v := 0; v < nv; v++ {
		res.TrackingErrors[v] = make([]int, nwl)
	}
	parallel.ForEach(nwl, func(wl int) {
		optimal := lab.OptimalOffsets(0, wl)
		sense := chip.Sense(0, wl, sv, 0, mathx.Mix(0x15a, uint64(wl)))
		_, inferred := eng.Infer(sense)
		// Calibrated = the offsets the full read flow ends at. When the
		// read fails outright, the controller reverts to the inferred
		// voltages (the best information it holds), so measure those.
		rr := ctl.Read(0, wl, msb, sent, mathx.Mix(0x15b, uint64(wl)))
		calibrated := rr.FinalOffsets
		if calibrated == nil || !rr.OK {
			calibrated = inferred
		}
		sets := [4]flash.Offsets{nil, inferred, calibrated, optimal}
		for v := 1; v <= nv; v++ {
			for m, ofs := range sets {
				up, down := chip.VoltageErrors(0, wl, v, ofs.Get(v),
					mathx.Mix4(0x15c, uint64(wl), uint64(v), uint64(m)))
				res.Errors[m][v-1][wl] = up + down
			}
			up, down := chip.VoltageErrors(0, wl, v, tracked.Get(v),
				mathx.Mix4(0x15d, uint64(wl), uint64(v), 9))
			res.TrackingErrors[v-1][wl] = up + down
		}
	})
	return res, nil
}

// SuccessRates returns, per voltage, the fraction of wordlines whose
// error count under the method is within 5% of the optimal count (plus a
// Poisson noise allowance), i.e. the paper's Figure 15 metric.
func (r *ErrCompResult) SuccessRates(method int) []float64 {
	nv := len(r.Errors[MethodOptimal])
	out := make([]float64, nv)
	for v := 0; v < nv; v++ {
		n := len(r.Errors[method][v])
		ok := 0
		for wl := 0; wl < n; wl++ {
			opt := float64(r.Errors[MethodOptimal][v][wl])
			got := float64(r.Errors[method][v][wl])
			if got <= opt*1.05+2*math.Sqrt(opt+1) {
				ok++
			}
		}
		out[v] = float64(ok) / float64(n)
	}
	return out
}

// MeanErrors returns the per-voltage mean error count for a method.
func (r *ErrCompResult) MeanErrors(method int) []float64 {
	return meanPerVoltage(r.Errors[method])
}

// MeanTrackingErrors returns the per-voltage mean error count under the
// tracking baseline.
func (r *ErrCompResult) MeanTrackingErrors() []float64 {
	return meanPerVoltage(r.TrackingErrors)
}

func meanPerVoltage(series [][]int) []float64 {
	out := make([]float64, len(series))
	for v, col := range series {
		s := 0
		for _, e := range col {
			s += e
		}
		if len(col) > 0 {
			out[v] = float64(s) / float64(len(col))
		}
	}
	return out
}

// TrackingHurtFraction returns, for voltage v (1-based), the fraction of
// wordlines where tracking produced MORE errors than the default voltages
// — the paper's Figure 18 observation that tracking helps some wordlines
// and hurts others.
func (r *ErrCompResult) TrackingHurtFraction(v int) float64 {
	col := r.TrackingErrors[v-1]
	def := r.Errors[MethodDefault][v-1]
	worse := 0
	for i := range col {
		if col[i] > def[i] {
			worse++
		}
	}
	return float64(worse) / float64(len(col))
}

// Render prints Figures 15-18 in text form.
func (r *ErrCompResult) Render() string {
	nv := len(r.Errors[MethodOptimal])
	infRates := r.SuccessRates(MethodInferred)
	calRates := r.SuccessRates(MethodCalibrated)
	rows := make([][]string, 0, nv)
	meanD := r.MeanErrors(MethodDefault)
	meanI := r.MeanErrors(MethodInferred)
	meanC := r.MeanErrors(MethodCalibrated)
	meanO := r.MeanErrors(MethodOptimal)
	meanT := r.MeanTrackingErrors()
	for v := 1; v <= nv; v++ {
		rows = append(rows, []string{
			fmt.Sprintf("V%d", v),
			F(meanD[v-1]), F(meanI[v-1]), F(meanC[v-1]), F(meanT[v-1]), F(meanO[v-1]),
			Pct(infRates[v-1]), Pct(calRates[v-1]),
		})
	}
	return fmt.Sprintf("Figs 15-18 (%v): per-voltage mean errors and success rates\n", r.Kind) +
		Table([]string{"voltage", "default", "inferred", "calibrated", "tracking",
			"optimal", "success(inf)", "success(cal)"}, rows)
}

// OverallSuccess returns the mean success rate across voltages (excluding
// V1, as the paper's figures do).
func (r *ErrCompResult) OverallSuccess(method int) float64 {
	rates := r.SuccessRates(method)
	if len(rates) <= 1 {
		return 0
	}
	return mathx.Mean(rates[1:])
}
