package experiments

import (
	"strings"
	"testing"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

func TestScalesValid(t *testing.T) {
	for _, s := range []Scale{Quick(), Full()} {
		if err := s.ChipConfig(flash.TLC, 1).Validate(); err != nil {
			t.Errorf("%s TLC config: %v", s.Name, err)
		}
		if err := s.Layout().Validate(s.ChipConfig(flash.QLC, 1)); err != nil {
			t.Errorf("%s layout: %v", s.Name, err)
		}
		if err := s.CapModel(flash.TLC).Validate(); err != nil {
			t.Errorf("%s cap: %v", s.Name, err)
		}
		if len(s.trainPoints()) == 0 {
			t.Errorf("%s has no stress points", s.Name)
		}
	}
	// Quick keeps the paper's absolute sentinel count.
	q := Quick()
	if n := q.Layout().Count(q.ChipConfig(flash.QLC, 1)); n < 200 || n > 500 {
		t.Errorf("quick sentinel count %d far from the paper's ~295", n)
	}
	f := Full()
	if n := f.Layout().Count(f.ChipConfig(flash.QLC, 1)); n < 200 || n > 400 {
		t.Errorf("full sentinel count %d far from the paper's ~295", n)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "333") || !strings.Contains(out, "bb") {
		t.Fatalf("table output wrong:\n%s", out)
	}
	if Pct(0.5) != "50.0%" {
		t.Fatal("Pct wrong")
	}
	if F(1.5) != "1.5" {
		t.Fatal("F wrong")
	}
}

func TestModelCacheHit(t *testing.T) {
	s := Quick()
	m1, err := s.TrainModel(flash.TLC, 113)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.TrainModel(flash.TLC, 113)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("cache miss on identical training request")
	}
}

func TestFig2VShaped(t *testing.T) {
	r, err := Fig2ErrorVsOffset(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Errors) != 7 {
		t.Fatalf("%d voltages", len(r.Errors))
	}
	for v, errs := range r.Errors {
		minI := 0
		for i, e := range errs {
			if e < errs[minI] {
				minI = i
			}
		}
		if minI == 0 || minI == len(errs)-1 {
			t.Errorf("V%d minimum on sweep edge", v+1)
		}
	}
	if !strings.Contains(r.Render(), "Fig 2") {
		t.Fatal("render missing title")
	}
}

func TestFig3OptimalBeatsDefault(t *testing.T) {
	r, err := Fig3LayerRBER(Quick(), flash.QLC)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	var defHi, defLo []float64
	for _, row := range r.Rows {
		if row.PE < 1000 {
			continue // fresh blocks have near-zero RBER either way
		}
		if row.OptimalMax >= row.DefaultMax {
			t.Fatalf("PE %d layer %d: optimal %v >= default %v",
				row.PE, row.Layer, row.OptimalMax, row.DefaultMax)
		}
		if row.PE == 5000 {
			defHi = append(defHi, row.DefaultMax)
		}
		if row.PE == 1000 {
			defLo = append(defLo, row.DefaultMax)
		}
	}
	if mathx.Mean(defHi) <= mathx.Mean(defLo) {
		t.Fatal("RBER did not grow with P/E cycles")
	}
	// Order-of-magnitude scale check against the paper's axes.
	if m := mathx.Mean(defHi); m < 1e-3 || m > 2e-1 {
		t.Fatalf("QLC default RBER at 5K P/E = %v, outside paper's range", m)
	}
	_ = r.Render()
}

func TestFig45TemperatureAcceleration(t *testing.T) {
	r, err := Fig45Temperature(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Hot RBER above room RBER for every page type (Fig 4).
	for p := range r.RoomRBER {
		if mathx.Mean(r.HotRBER[p]) <= mathx.Mean(r.RoomRBER[p]) {
			t.Fatalf("page %d: hot RBER not above room", p)
		}
	}
	// Hot optima more negative than room optima (Fig 5).
	for vi := range r.Voltages {
		if mathx.Mean(r.HotOpt[vi]) >= mathx.Mean(r.RoomOpt[vi]) {
			t.Fatalf("V%d: hot optimum not below room", r.Voltages[vi])
		}
	}
	_ = r.Render()
}

func TestFig6ShiftPattern(t *testing.T) {
	r, err := Fig6LayerOptima(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Opt) != 15 {
		t.Fatalf("%d voltages", len(r.Opt))
	}
	// Lower voltages shift more than higher ones (V2 vs V15), and layers
	// vary.
	m2 := mathx.Mean(r.Opt[1])
	m15 := mathx.Mean(r.Opt[14])
	if !(m2 < m15 && m15 < 1) {
		t.Fatalf("shift pattern wrong: V2 %v, V15 %v", m2, m15)
	}
	lo, hi := mathx.MinMax(r.Opt[7])
	if hi-lo < 2 {
		t.Fatalf("V8 layer variation only %v", hi-lo)
	}
	_ = r.Render()
}

func TestFig7Locality(t *testing.T) {
	r, err := Fig7ErrorMap(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.UniformityChi2 <= 0 || r.UniformityChi2 > 3 {
		t.Fatalf("uniformity chi2 %v, want ~1", r.UniformityChi2)
	}
	if r.WordlineVariation < 0.1 {
		t.Fatalf("wordline variation %v too small for Fig 7's stripes",
			r.WordlineVariation)
	}
	_ = r.Render()
}

func TestFig8StrongCorrelations(t *testing.T) {
	r, err := Fig8Correlation(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if n := r.StrongCount(0.75); n < 11 {
		t.Fatalf("only %d/14 voltages strongly correlated", n)
	}
	_ = r.Render()
}
