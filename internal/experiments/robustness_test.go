package experiments

import "testing"

// TestCorruptionSweepGraceful is the acceptance gate for the degradation
// ladder: at every corruption rate the fallback policy must do no worse
// than the static vendor table (mean retries and failures), while the bare
// sentinel policy measurably degrades as the corruption grows.
func TestCorruptionSweepGraceful(t *testing.T) {
	r, err := CorruptionSweep(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("sweep produced %d rows, want 6", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.FallbackRetries > row.TableRetries {
			t.Errorf("rate %.0f%%: fallback mean retries %.3f exceed table %.3f",
				row.Rate*100, row.FallbackRetries, row.TableRetries)
		}
		if row.FallbackFails > row.TableFails {
			t.Errorf("rate %.0f%%: fallback fails %d exceed table %d",
				row.Rate*100, row.FallbackFails, row.TableFails)
		}
	}
	clean, worst := r.Rows[0], r.Rows[len(r.Rows)-1]
	if clean.BlockDegraded {
		t.Error("probe degraded a healthy block")
	}
	if clean.FallbackRetries >= clean.TableRetries {
		t.Errorf("healthy block: fallback %.3f not better than table %.3f",
			clean.FallbackRetries, clean.TableRetries)
	}
	if !worst.BlockDegraded {
		t.Error("probe did not trip at 10% corruption")
	}
	// Every nonzero rate must cost the bare policy extra retries, and the
	// worst rate measurably so.
	for _, row := range r.Rows[1:] {
		if row.BareRetries <= clean.BareRetries {
			t.Errorf("rate %.0f%%: bare sentinel did not degrade (%.3f vs %.3f clean)",
				row.Rate*100, row.BareRetries, clean.BareRetries)
		}
	}
	if worst.BareRetries < 1.05*clean.BareRetries {
		t.Errorf("bare sentinel degradation at 10%% not measurable: %.3f vs %.3f clean",
			worst.BareRetries, clean.BareRetries)
	}
	// The ladder must be graduated: some nonzero rate is absorbed by the
	// clamp+calibration (block stays on sentinel inference and beats the
	// table), rather than the probe tripping at the first corrupted cell.
	graduated := false
	for _, row := range r.Rows[1:] {
		if !row.BlockDegraded && row.FallbackRetries < row.TableRetries {
			graduated = true
		}
	}
	if !graduated {
		t.Error("probe tripped at every nonzero rate: degradation is a cliff, not a ladder")
	}
}

// TestFaultedWorkerCountDeterminism extends the worker-count regression to
// a faulted run: seed-keyed fault decisions plus the coordinator-side block
// probe must keep the rendered sweep byte-identical at any worker count.
func TestFaultedWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full sweep twice")
	}
	run := func() (string, error) {
		r, err := CorruptionSweep(Quick())
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}
	var serial, fanned string
	var err1, err2 error
	withWorkers(1, func() { serial, err1 = run() })
	if err1 != nil {
		t.Fatal(err1)
	}
	withWorkers(8, func() { fanned, err2 = run() })
	if err2 != nil {
		t.Fatal(err2)
	}
	if serial != fanned {
		t.Errorf("faulted sweep differs between workers=1 and workers=8:\n"+
			"--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, fanned)
	}
}
