package experiments

import (
	"testing"

	"sentinel3d/internal/parallel"
)

// withWorkers runs fn with the parallel worker count pinned to n.
func withWorkers(n int, fn func()) {
	defer parallel.SetWorkers(parallel.SetWorkers(n))
	fn()
}

// TestWorkerCountDeterminism is the regression gate for the parallel
// engine's core contract: the rendered output of an experiment is
// byte-identical whether the per-wordline fan-out runs on one worker or
// many. Every experiment assembles per-wordline results into
// index-addressed slots and folds them serially in index order, so the
// worker count can only change timing, never bytes.
func TestWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments twice")
	}
	s := Quick()
	cases := []struct {
		name string
		run  func() (string, error)
	}{
		{"Fig2ErrorVsOffset", func() (string, error) {
			r, err := Fig2ErrorVsOffset(s)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Fig13RetryCount", func() (string, error) {
			r, err := Fig13RetryCount(s)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var serial, fanned string
			var err1, err2 error
			withWorkers(1, func() { serial, err1 = tc.run() })
			if err1 != nil {
				t.Fatal(err1)
			}
			withWorkers(8, func() { fanned, err2 = tc.run() })
			if err2 != nil {
				t.Fatal(err2)
			}
			if serial != fanned {
				t.Errorf("output differs between workers=1 and workers=8:\n"+
					"--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, fanned)
			}
		})
	}
}
