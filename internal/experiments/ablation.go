package experiments

import (
	"fmt"
	"math"

	"sentinel3d/internal/charlab"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/sentinel"
)

// ---------------------------------------------------------------------------
// Ablation: sentinel placement (tail-OOB vs spread).

// PlacementAblationResult compares inference accuracy under the paper's
// tail-OOB layout against an idealized spread layout.
type PlacementAblationResult struct {
	Kind flash.Kind
	// Mean |inferred - truth| per placement.
	TailMean, SpreadMean float64
	// Inference error on the high-gradient wordlines only (the failure
	// mode the calibration step exists for).
	TailGradMean, SpreadGradMean float64
}

// AblatePlacement quantifies the cost of the paper's tail-OOB placement:
// sentinels at the wordline tail misread wordlines with a spatial shift
// gradient, which evenly spread sentinels would sample correctly. The
// paper accepts the bias (the OOB is the only free space) and repairs it
// with calibration.
func AblatePlacement(s Scale, kind flash.Kind) (*PlacementAblationResult, error) {
	model, err := s.TrainModel(kind, 131)
	if err != nil {
		return nil, err
	}
	res := &PlacementAblationResult{Kind: kind}
	pe := 5000
	if kind == flash.QLC {
		pe = 1000
	}
	for _, placement := range []sentinel.Placement{sentinel.TailOOB, sentinel.Spread} {
		layout := sentinel.Layout{Ratio: s.SentinelRatio, Placement: placement}
		cfg := s.ChipConfig(kind, 231)
		eng, err := sentinel.NewEngine(model, layout, sentinel.DefaultCalibrator(), cfg)
		if err != nil {
			return nil, err
		}
		chip, err := s.BuildEvalChip(kind, 231, eng, pe, physics.YearHours)
		if err != nil {
			return nil, err
		}
		lab := charlab.New(chip)
		sv := model.SentinelVoltage
		type wlErr struct {
			e      float64
			isGrad bool
		}
		perWL := parallel.Map(cfg.WordlinesPerBlock(), func(wl int) wlErr {
			sense := chip.Sense(0, wl, sv, 0, mathx.Mix(0x13c, uint64(wl)))
			_, inferred := eng.Infer(sense)
			e := math.Abs(inferred.Get(sv) - lab.OptimalOffset(0, wl, sv))
			g := chip.Model().WLGradient(uint64(wl))
			return wlErr{e: e, isGrad: math.Abs(g) > chip.Model().P.GradientStd}
		})
		var all, grad []float64
		for _, w := range perWL {
			all = append(all, w.e)
			if w.isGrad {
				grad = append(grad, w.e)
			}
		}
		mean, gradMean := mathx.Mean(all), mathx.Mean(grad)
		if placement == sentinel.TailOOB {
			res.TailMean, res.TailGradMean = mean, gradMean
		} else {
			res.SpreadMean, res.SpreadGradMean = mean, gradMean
		}
	}
	return res, nil
}

// Render prints the comparison.
func (r *PlacementAblationResult) Render() string {
	return fmt.Sprintf("Ablation (%v): sentinel placement\n"+
		"  tail-OOB (paper): mean |inferred-truth| %.2f (high-gradient WLs: %.2f)\n"+
		"  spread (ideal):   mean |inferred-truth| %.2f (high-gradient WLs: %.2f)\n",
		r.Kind, r.TailMean, r.TailGradMean, r.SpreadMean, r.SpreadGradMean)
}

// ---------------------------------------------------------------------------
// Ablation: calibration step size.

// DeltaAblationRow is one calibration-step setting's outcome on the
// Figure 13 workload.
type DeltaAblationRow struct {
	Delta       float64
	MeanRetries float64
	Fails       int
}

// DeltaAblationResult sweeps the calibration step size.
type DeltaAblationResult struct {
	Rows []DeltaAblationRow
}

// AblateCalibrationDelta reruns the Figure 13 sentinel flow with
// different calibration step sizes, under an ECC capability tightened to
// the point where inference alone often fails and calibration must walk.
// Too small a Δ crawls toward distant optima; too large a Δ can straddle
// the ECC pass window.
func AblateCalibrationDelta(s Scale) (*DeltaAblationResult, error) {
	model, err := s.TrainModel(flash.TLC, 113)
	if err != nil {
		return nil, err
	}
	cfg := s.ChipConfig(flash.TLC, 213)
	// Tight capability: calibration has to engage.
	tight := s
	tight.TLCCapT = s.TLCCapT * 2 / 3
	res := &DeltaAblationResult{}
	for _, delta := range []float64{1, 2, 4, 8} {
		cal := sentinel.Calibrator{Delta: delta, MaxSteps: 6}
		eng, err := sentinel.NewEngine(model, s.Layout(), cal, cfg)
		if err != nil {
			return nil, err
		}
		chip, err := s.BuildEvalChip(flash.TLC, 213, eng, 5000, physics.YearHours)
		if err != nil {
			return nil, err
		}
		ctl, err := tight.Controller(chip, s.MaxRetries)
		if err != nil {
			return nil, err
		}
		pol := retry.NewSentinelPolicy(eng)
		msb := chip.Coding().Bits() - 1
		var sum float64
		fails := 0
		n := cfg.WordlinesPerBlock()
		for _, r := range parallel.Map(n, func(wl int) retry.Result {
			return ctl.Read(0, wl, msb, pol, mathx.Mix(0x13d, uint64(wl)))
		}) {
			sum += float64(r.Retries)
			if !r.OK {
				fails++
			}
		}
		res.Rows = append(res.Rows, DeltaAblationRow{
			Delta: delta, MeanRetries: sum / float64(n), Fails: fails,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *DeltaAblationResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			F(row.Delta), fmt.Sprintf("%.2f", row.MeanRetries), fmt.Sprint(row.Fails),
		})
	}
	return "Ablation: calibration step size Δ (TLC Fig-13 workload)\n" +
		Table([]string{"delta", "mean retries", "unreadable"}, rows)
}

// ---------------------------------------------------------------------------
// Ablation: combined tracking + sentinel (the paper's Section V sketch).

// CombinedAblationResult compares first-read policies.
type CombinedAblationResult struct {
	SentinelRetries float64
	CombinedRetries float64
	SentinelFirstOK float64 // fraction of reads passing on attempt 0
	CombinedFirstOK float64
}

// AblateCombined measures the Section V extension: starting reads at the
// tracked per-block voltages and falling back to sentinel inference.
func AblateCombined(s Scale) (*CombinedAblationResult, error) {
	model, err := s.TrainModel(flash.TLC, 113)
	if err != nil {
		return nil, err
	}
	cfg := s.ChipConfig(flash.TLC, 233)
	eng, err := s.Engine(model, cfg)
	if err != nil {
		return nil, err
	}
	chip, err := s.BuildEvalChip(flash.TLC, 233, eng, 5000, physics.YearHours)
	if err != nil {
		return nil, err
	}
	ctl, err := s.Controller(chip, s.MaxRetries)
	if err != nil {
		return nil, err
	}
	tracking := retry.NewTracking(retry.NewDefaultTable(chip, s.TableStep))
	if err := tracking.UpdateBlock(chip, 0, 0); err != nil {
		return nil, err
	}
	sent := retry.NewSentinelPolicy(eng)
	combined := retry.NewCombined(tracking, sent)
	res := &CombinedAblationResult{}
	msb := chip.Coding().Bits() - 1
	n := cfg.WordlinesPerBlock()
	type wlRead struct{ sent, combined retry.Result }
	for _, r := range parallel.Map(n, func(wl int) wlRead {
		return wlRead{
			sent:     ctl.Read(0, wl, msb, sent, mathx.Mix(0x13e, uint64(wl))),
			combined: ctl.Read(0, wl, msb, combined, mathx.Mix(0x13f, uint64(wl))),
		}
	}) {
		res.SentinelRetries += float64(r.sent.Retries)
		res.CombinedRetries += float64(r.combined.Retries)
		if r.sent.OK && r.sent.Retries == 0 {
			res.SentinelFirstOK++
		}
		if r.combined.OK && r.combined.Retries == 0 {
			res.CombinedFirstOK++
		}
	}
	res.SentinelRetries /= float64(n)
	res.CombinedRetries /= float64(n)
	res.SentinelFirstOK /= float64(n)
	res.CombinedFirstOK /= float64(n)
	return res, nil
}

// Render prints the comparison.
func (r *CombinedAblationResult) Render() string {
	return fmt.Sprintf("Ablation: tracking+sentinel combination (paper Section V)\n"+
		"  sentinel alone:    %.2f retries/read, %.0f%% first-read success\n"+
		"  tracking+sentinel: %.2f retries/read, %.0f%% first-read success\n",
		r.SentinelRetries, r.SentinelFirstOK*100,
		r.CombinedRetries, r.CombinedFirstOK*100)
}
