package experiments

import (
	"strings"
	"testing"
)

func TestTempBandsImproveHotInference(t *testing.T) {
	r, err := TempBandExperiment(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.BandTableErr <= 0 || r.RoomTableErr <= 0 {
		t.Fatalf("degenerate errors: %+v", r)
	}
	// The hot band's table must beat the room table when reading hot —
	// the reason Section III-D keeps one table per temperature range.
	if r.BandTableErr >= r.RoomTableErr {
		t.Fatalf("banded table (%.2f) not better than room table (%.2f) at %v C",
			r.BandTableErr, r.RoomTableErr, r.ReadTempC)
	}
	if !strings.Contains(r.Render(), "Temperature bands") {
		t.Fatal("render missing")
	}
}
