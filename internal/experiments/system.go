package experiments

import (
	"fmt"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/ftl"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/ssdsim"
	"sentinel3d/internal/trace"
)

// ---------------------------------------------------------------------------
// Figure 14: trace-driven read-latency reduction.

// Fig14Row is one workload's outcome.
type Fig14Row struct {
	Workload      string
	BaselineUS    float64
	SentinelUS    float64
	Reduction     float64 // fraction
	BaselineP99US float64
	SentinelP99US float64
}

// Fig14Result holds all workloads.
type Fig14Result struct {
	Rows []Fig14Row
	// Mean retry counts measured on the chip, per policy (MSB page).
	TableMSBRetries float64
	SentMSBRetries  float64
}

// Fig14TraceLatency builds retry-outcome distributions for the current
// flash and sentinel policies on the aged TLC chip, then replays the
// eight MSR-like workloads through the SSD simulator under each.
func Fig14TraceLatency(s Scale, requests int) (*Fig14Result, error) {
	if requests <= 0 {
		requests = 6000
	}
	model, err := s.TrainModel(flash.TLC, 114)
	if err != nil {
		return nil, err
	}
	cfg := s.ChipConfig(flash.TLC, 214)
	eng, err := s.Engine(model, cfg)
	if err != nil {
		return nil, err
	}
	chip, err := s.BuildEvalChip(flash.TLC, 214, eng, 5000, physics.YearHours)
	if err != nil {
		return nil, err
	}
	ctl, err := s.Controller(chip, s.MaxRetries)
	if err != nil {
		return nil, err
	}
	// Sample retry outcomes over a spread of wordlines.
	var wls []int
	nwl := cfg.WordlinesPerBlock()
	step := nwl / 16
	if step < 1 {
		step = 1
	}
	for wl := 0; wl < nwl; wl += step {
		wls = append(wls, wl)
	}
	table := retry.NewDefaultTable(chip, s.TableStep)
	sent := retry.NewSentinelPolicy(eng)
	baseSampler, err := ssdsim.BuildSampler(ctl, table, 0, wls, 3, 0x14a)
	if err != nil {
		return nil, err
	}
	sentSampler, err := ssdsim.BuildSampler(ctl, sent, 0, wls, 3, 0x14b)
	if err != nil {
		return nil, err
	}

	simCfg := ssdsim.DefaultConfig()
	simCfg.Geo = ftl.Geometry{
		Channels: 4, ChipsPerChan: 1, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 32, PagesPerBlock: 192,
	}
	res := &Fig14Result{
		TableMSBRetries: baseSampler.MeanRetries(2),
		SentMSBRetries:  sentSampler.MeanRetries(2),
	}
	// Each workload replays through its own pair of simulator instances;
	// the samplers are shared but read-only during runs. Fan out across
	// workloads and keep Rows in workload order.
	specs := trace.MSRWorkloads()
	rows, err := parallel.MapErr(len(specs), func(i int) (Fig14Row, error) {
		spec := specs[i]
		spec.WorkingSetPages = int64(simCfg.Geo.PagesTotal()) * 6 / 10
		// The MSR volumes are light relative to an SSD's capability (the
		// paper's SSDSim runs show latency ratios near the device-level
		// retry ratio, i.e. negligible queueing); scale the arrival rate
		// down accordingly.
		spec.MeanIATUS *= 6
		// Replay through a single-shard engine with exact latency
		// collection: identical output to Precondition+Run on a plain
		// Sim, but the trace streams from the generator twice instead of
		// being materialized.
		open := trace.GeneratorOpener(spec, requests, mathx.Mix(0x14c, uint64(len(spec.Name))))
		run := func(sampler ssdsim.RetrySampler) (*ssdsim.Report, error) {
			eng, err := ssdsim.NewEngine(ssdsim.ReplayConfig{
				Sim: simCfg, CollectLatencies: true, Precondition: true,
				Metrics: s.Obs,
			}, sampler)
			if err != nil {
				return nil, err
			}
			return eng.Replay(open)
		}
		base, err := run(baseSampler)
		if err != nil {
			return Fig14Row{}, err
		}
		sentRep, err := run(sentSampler)
		if err != nil {
			return Fig14Row{}, err
		}
		row := Fig14Row{
			Workload:      spec.Name,
			BaselineUS:    base.MeanReadUS,
			SentinelUS:    sentRep.MeanReadUS,
			BaselineP99US: base.P99ReadUS,
			SentinelP99US: sentRep.P99ReadUS,
		}
		if base.MeanReadUS > 0 {
			row.Reduction = 1 - sentRep.MeanReadUS/base.MeanReadUS
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// MeanReduction returns the average read-latency reduction across
// workloads.
func (r *Fig14Result) MeanReduction() float64 {
	var s float64
	for _, row := range r.Rows {
		s += row.Reduction
	}
	if len(r.Rows) == 0 {
		return 0
	}
	return s / float64(len(r.Rows))
}

// Render prints the per-workload reductions.
func (r *Fig14Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload,
			fmt.Sprintf("%.0f", row.BaselineUS),
			fmt.Sprintf("%.0f", row.SentinelUS),
			Pct(row.Reduction),
			fmt.Sprintf("%.0f", row.BaselineP99US),
			fmt.Sprintf("%.0f", row.SentinelP99US),
		})
	}
	return fmt.Sprintf("Fig 14: trace-driven read latency (chip MSB retries: "+
		"current flash %.2f, sentinel %.2f)\n", r.TableMSBRetries, r.SentMSBRetries) +
		Table([]string{"workload", "base µs", "sentinel µs", "reduction",
			"base p99", "sentinel p99"}, rows) +
		fmt.Sprintf("mean read-latency reduction: %s (paper: 74%%)\n",
			Pct(r.MeanReduction()))
}
