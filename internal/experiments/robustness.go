package experiments

import (
	"fmt"

	"sentinel3d/internal/fault"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
)

// ---------------------------------------------------------------------------
// Robustness: sentinel-region corruption sweep.

// RobustnessRow holds the three policies' outcomes at one corruption rate.
type RobustnessRow struct {
	// Rate is the fraction of sentinel-region cells stuck high.
	Rate float64
	// Mean MSB retries per wordline under each policy.
	TableRetries    float64
	BareRetries     float64
	FallbackRetries float64
	// Unreadable wordlines under each policy.
	TableFails    int
	BareFails     int
	FallbackFails int
	// FallbackDegradedReads counts wordlines the fallback policy served
	// from the static table (block-probe or per-read guard).
	FallbackDegradedReads int
	// BlockDegraded reports whether the coordinator-side probe latched the
	// block into degraded mode before the reads.
	BlockDegraded bool
	// StuckEstimate is the stuck fraction the probe measured.
	StuckEstimate float64
}

// RobustnessResult holds the sweep, one row per corruption rate.
type RobustnessResult struct {
	Rows []RobustnessRow
}

// CorruptionSweep measures graceful degradation of the read stack: an aged
// TLC block (P/E 5000, one year) whose sentinel region is corrupted by a
// growing fraction of stuck-high cells, read with the static vendor table,
// the bare sentinel policy, and the sentinel policy wrapped in the fallback
// guard. The bare policy's inference collapses as the corruption grows; the
// fallback must never do worse than the static table at any rate.
//
// All three policies read each wordline with the same read seed, and the
// per-wordline fan-out uses index-addressed slots, so the result is
// byte-identical at any worker count.
func CorruptionSweep(s Scale) (*RobustnessResult, error) {
	model, err := s.TrainModel(flash.TLC, 117)
	if err != nil {
		return nil, err
	}
	cfg := s.ChipConfig(flash.TLC, 217)
	eng, err := s.Engine(model, cfg)
	if err != nil {
		return nil, err
	}
	chip, err := s.BuildEvalChip(flash.TLC, 217, eng, 5000, physics.YearHours)
	if err != nil {
		return nil, err
	}
	ctl, err := s.Controller(chip, s.MaxRetries)
	if err != nil {
		return nil, err
	}
	table := retry.NewDefaultTable(chip, s.TableStep)
	bare := retry.NewSentinelPolicy(eng)
	// The sentinels live at the tail of the wordline; corrupt exactly that
	// region.
	region := [2]int{cfg.CellsPerWordline - len(eng.Indices()), cfg.CellsPerWordline}
	msb := chip.Coding().Bits() - 1
	nwl := cfg.WordlinesPerBlock()
	res := &RobustnessResult{}
	for i, rate := range []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10} {
		if rate == 0 {
			chip.SetFaults(nil)
		} else {
			chip.SetFaults(fault.MustNew(fault.Profile{
				Seed:              mathx.Mix(0xb0b, uint64(i)),
				SentinelStuckRate: rate,
				SentinelRegion:    region,
				StuckHighFraction: 1,
			}))
		}
		fb := retry.NewFallback(retry.NewSentinelPolicy(eng), table)
		stuck := fb.ProbeBlock(chip, 0, 0) // coordinator-side, before fan-out
		type wlRead struct{ table, bare, fb retry.Result }
		reads := parallel.Map(nwl, func(wl int) wlRead {
			seed := mathx.Mix3(0xc0c, uint64(i), uint64(wl))
			return wlRead{
				table: ctl.Read(0, wl, msb, table, seed),
				bare:  ctl.Read(0, wl, msb, bare, seed),
				fb:    ctl.Read(0, wl, msb, fb, seed),
			}
		})
		row := RobustnessRow{
			Rate:          rate,
			BlockDegraded: fb.BlockDegraded(0),
			StuckEstimate: stuck,
		}
		for _, r := range reads {
			row.TableRetries += float64(r.table.Retries)
			row.BareRetries += float64(r.bare.Retries)
			row.FallbackRetries += float64(r.fb.Retries)
			if !r.table.OK {
				row.TableFails++
			}
			if !r.bare.OK {
				row.BareFails++
			}
			if !r.fb.OK {
				row.FallbackFails++
			}
			if r.fb.UsedFallback {
				row.FallbackDegradedReads++
			}
		}
		row.TableRetries /= float64(nwl)
		row.BareRetries /= float64(nwl)
		row.FallbackRetries /= float64(nwl)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep as a table.
func (r *RobustnessResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			Pct(row.Rate),
			F(row.TableRetries), F(row.BareRetries), F(row.FallbackRetries),
			fmt.Sprintf("%d", row.TableFails), fmt.Sprintf("%d", row.BareFails),
			fmt.Sprintf("%d", row.FallbackFails),
			fmt.Sprintf("%d", row.FallbackDegradedReads),
			fmt.Sprintf("%v", row.BlockDegraded), F(row.StuckEstimate),
		})
	}
	return "Robustness (TLC, P/E 5000, 1 yr): MSB retries vs sentinel corruption\n" +
		Table([]string{"corrupt", "table", "bare-sent", "fallback", "tblFail",
			"bareFail", "fbFail", "fbDegraded", "probeTrip", "probeFrac"}, rows)
}
