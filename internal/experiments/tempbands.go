package experiments

import (
	"fmt"
	"math"

	"sentinel3d/internal/charlab"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/sentinel"
)

// TempBandResult measures the value of per-temperature correlation tables
// (paper Section III-D): inference error at a hot read temperature with
// the room-temperature table versus the matching band's table.
type TempBandResult struct {
	ReadTempC float64
	// Mean per-voltage |inferred - truth| over the non-sentinel voltages,
	// with the room table and with the banded table.
	RoomTableErr float64
	BandTableErr float64
}

// TempBandExperiment trains a banded model, heats the evaluation chip's
// environment, and compares inference accuracy across all voltages under
// the two tables. The sentinel voltage itself is excluded (it is inferred
// directly from d either way); the bands matter for the *other* voltages.
func TempBandExperiment(s Scale) (*TempBandResult, error) {
	const hotC = 85
	// Train with explicit bands; the model cache key does not cover
	// bands, so train directly.
	chip, err := flash.New(s.ChipConfig(flash.QLC, 141))
	if err != nil {
		return nil, err
	}
	tc := sentinel.TrainConfig{
		Points:            s.trainPoints(),
		WordlinesPerPoint: s.TrainWLs,
		Layout:            s.Layout(),
		PolyDegree:        5,
		MeasureReads:      2,
		Seed:              mathx.Mix(141, 0x7ea1),
		TempBandsC:        []float64{45, 100},
	}
	model, err := sentinel.Train(chip, tc)
	if err != nil {
		return nil, err
	}

	evalCfg := s.ChipConfig(flash.QLC, 241)
	eng, err := s.Engine(model, evalCfg)
	if err != nil {
		return nil, err
	}
	eval, err := s.BuildEvalChip(flash.QLC, 241, eng, 1000, physics.YearHours)
	if err != nil {
		return nil, err
	}
	eval.SetReadTemperature(0, hotC)
	lab := charlab.New(eval)
	sv := model.SentinelVoltage
	nv := eval.Coding().NumVoltages()

	res := &TempBandResult{ReadTempC: hotC}
	type wlErrs struct{ room, band []float64 }
	perWL := parallel.Map(evalCfg.WordlinesPerBlock(), func(wl int) wlErrs {
		truth := lab.OptimalOffsets(0, wl)
		sense := eval.Sense(0, wl, sv, 0, mathx.Mix(0x7b, uint64(wl)))
		d := sentinel.ErrorDiffRate(sense, eng.Indices())
		sentOfs := model.InferSentinelOffset(d)
		room := model.OffsetsFromSentinelAt(sentOfs, physics.RoomTempC)
		band := model.OffsetsFromSentinelAt(sentOfs, hotC)
		var out wlErrs
		for v := 2; v <= nv; v++ { // exclude V1 (erratic) and count sv too
			if v == sv {
				continue
			}
			out.room = append(out.room, math.Abs(room.Get(v)-truth.Get(v)))
			out.band = append(out.band, math.Abs(band.Get(v)-truth.Get(v)))
		}
		return out
	})
	var roomErrs, bandErrs []float64
	for _, w := range perWL {
		roomErrs = append(roomErrs, w.room...)
		bandErrs = append(bandErrs, w.band...)
	}
	res.RoomTableErr = mathx.Mean(roomErrs)
	res.BandTableErr = mathx.Mean(bandErrs)
	return res, nil
}

// Render prints the comparison.
func (r *TempBandResult) Render() string {
	return fmt.Sprintf("Temperature bands (paper Section III-D), read at %.0f C:\n"+
		"  room-temperature correlation table: mean per-voltage error %.2f\n"+
		"  matching hot-band table:            mean per-voltage error %.2f\n",
		r.ReadTempC, r.RoomTableErr, r.BandTableErr)
}
