// Command reproduce runs the paper's tables and figures on the simulated
// chips and prints the results as text tables.
//
// Usage:
//
//	reproduce -exp fig13              # one experiment at quick scale
//	reproduce -exp all -scale full    # the whole evaluation, full fidelity
//
// Experiment ids: fig2 fig3 fig45 fig6 fig7 fig8 fig10 table1 fig12 fig13
// fig14 fig15 (alias: errcomp, covers figs 15-18) fig19 robust all; plus
// replay (the trace-replay engine's scaling table, never part of all).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
)

type renderer interface{ Render() string }

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")
	var (
		expID    = flag.String("exp", "all", "experiment id (fig2..fig19, table1, ablations, all)")
		scaleStr = flag.String("scale", "quick", "quick or full")
		kindStr  = flag.String("kind", "both", "tlc, qlc or both (where applicable)")
		requests = flag.Int("requests", 6000, "trace requests per workload (fig14, replay)")
		workers  = flag.Int("workers", 0, "worker goroutines for per-wordline fan-out (0 = all CPUs); results are identical at any setting")

		metricsOut = flag.String("metrics", "", "write a Prometheus-style metrics snapshot here at exit ('-' for stdout)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /slow, /debug/vars and /debug/pprof on this address during the run")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	var scale experiments.Scale
	switch *scaleStr {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		log.Fatalf("unknown scale %q", *scaleStr)
	}
	// The experiments fan out over a single chip-level shard (Fig14's
	// replay engines are single-shard too), so one shard is enough; the
	// slow ring backs the /slow endpoint.
	var reg *obs.Registry
	if *metricsOut != "" || *debugAddr != "" {
		reg = obs.NewRegistry(1)
		reg.KeepSlowest(32)
		scale.Obs = reg
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug endpoint: http://%s/metrics\n", srv.Addr)
	}

	kinds := []flash.Kind{flash.TLC, flash.QLC}
	switch strings.ToLower(*kindStr) {
	case "tlc":
		kinds = []flash.Kind{flash.TLC}
	case "qlc":
		kinds = []flash.Kind{flash.QLC}
	case "both":
	default:
		log.Fatalf("unknown kind %q", *kindStr)
	}

	run := func(id string, fn func() (renderer, error)) {
		start := time.Now()
		r, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("== %s (%s scale, %.1fs) ==\n%s\n",
			id, scale.Name, time.Since(start).Seconds(), r.Render())
	}

	all := *expID == "all"
	want := func(id string) bool { return all || *expID == id }

	if want("fig2") {
		run("fig2", func() (renderer, error) { return experiments.Fig2ErrorVsOffset(scale) })
	}
	if want("fig3") {
		for _, k := range kinds {
			k := k
			run("fig3/"+k.String(), func() (renderer, error) {
				return experiments.Fig3LayerRBER(scale, k)
			})
		}
	}
	if want("fig45") || want("fig4") || want("fig5") {
		run("fig4+fig5", func() (renderer, error) { return experiments.Fig45Temperature(scale) })
	}
	if want("fig6") {
		run("fig6", func() (renderer, error) { return experiments.Fig6LayerOptima(scale) })
	}
	if want("fig7") {
		run("fig7", func() (renderer, error) { return experiments.Fig7ErrorMap(scale) })
	}
	if want("fig8") {
		run("fig8", func() (renderer, error) { return experiments.Fig8Correlation(scale) })
	}
	if want("fig10") {
		for _, k := range kinds {
			k := k
			run("fig10/"+k.String(), func() (renderer, error) {
				return experiments.Fig10InferenceFit(scale, k)
			})
		}
	}
	if want("table1") {
		for _, k := range kinds {
			k := k
			run("table1/"+k.String(), func() (renderer, error) {
				return experiments.Table1SentinelRatio(scale, k)
			})
		}
	}
	if want("fig12") {
		run("fig12", func() (renderer, error) { return experiments.Fig12StateChange(scale) })
	}
	if want("fig13") {
		run("fig13", func() (renderer, error) { return experiments.Fig13RetryCount(scale) })
	}
	if want("fig14") {
		run("fig14", func() (renderer, error) {
			return experiments.Fig14TraceLatency(scale, *requests)
		})
	}
	if want("fig15") || want("errcomp") || want("fig16") || want("fig17") || want("fig18") {
		for _, k := range kinds {
			k := k
			run("figs15-18/"+k.String(), func() (renderer, error) {
				return experiments.ErrorComparison(scale, k)
			})
		}
	}
	if want("fig19") {
		run("fig19", func() (renderer, error) { return experiments.Fig19LDPC(scale) })
	}
	if want("robust") {
		run("robust", func() (renderer, error) { return experiments.CorruptionSweep(scale) })
	}
	// Engineering measurement, not a paper figure: only on explicit
	// request (it replays the trace four times to cover the matrix).
	if *expID == "replay" {
		run("replay", func() (renderer, error) {
			return experiments.ReplayThroughput(*requests)
		})
	}
	if want("ablations") {
		run("ablation/placement", func() (renderer, error) {
			return experiments.AblatePlacement(scale, flash.QLC)
		})
		run("ablation/tempbands", func() (renderer, error) {
			return experiments.TempBandExperiment(scale)
		})
		run("ablation/delta", func() (renderer, error) {
			return experiments.AblateCalibrationDelta(scale)
		})
		run("ablation/combined", func() (renderer, error) {
			return experiments.AblateCombined(scale)
		})
	}

	if *metricsOut != "" {
		if err := obs.Dump(*metricsOut, reg); err != nil {
			log.Fatal(err)
		}
	}
}
