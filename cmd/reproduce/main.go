// Command reproduce runs the paper's tables and figures on the simulated
// chips and prints the results as text tables. It is a thin front-end
// over the internal/scenario registry: every experiment id is a registry
// entry, and -matrix runs a whole declarative experiment matrix (see
// scenarios/) with shared preconditioning, golden-digest gating and
// machine-readable per-cell results.
//
// Usage:
//
//	reproduce -exp fig13                     # one experiment at quick scale
//	reproduce -exp all -scale full           # the whole evaluation, full fidelity
//	reproduce -list                          # show every registry entry
//	reproduce -matrix scenarios/paper.json   # the full declarative matrix
//	reproduce -matrix scenarios/smoke.json -cells '^replay_' -out results/
//
// Experiment ids: fig2 fig3 fig45 fig6 fig7 fig8 fig10 table1 fig12 fig13
// fig14 fig15 (alias: errcomp, covers figs 15-18) fig19 robust ablations
// all; plus replay (one workload through the sharded streaming engine)
// and replay-throughput (the engine's wall-clock scaling table, never
// part of all).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"regexp"
	"strings"
	"syscall"

	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")
	var (
		expID    = flag.String("exp", "all", "experiment id (see -list), or all")
		scaleStr = flag.String("scale", "quick", "quick or full")
		kindStr  = flag.String("kind", "both", "tlc, qlc or both (where applicable)")
		requests = flag.Int("requests", 0, "trace requests per workload (0 = experiment default)")
		workers  = flag.Int("workers", 0, "worker goroutines for per-wordline fan-out (0 = all CPUs); results are identical at any setting")
		workload = flag.String("workload", "", "replay: workload name (hm_0, prxy_0, ...)")
		policy   = flag.String("policy", "", "replay: retry policy (sentinel, table, fallback, synthetic)")
		shards   = flag.Int("shards", 0, "replay: engine shards (0 = 1)")
		devices  = flag.Int("devices", 0, "replay: fleet devices the trace is striped across (0 = 1)")

		matrixPath = flag.String("matrix", "", "run a scenario matrix JSON instead of -exp")
		cellsRe    = flag.String("cells", "", "with -matrix: run only cells whose name matches this regexp")
		outDir     = flag.String("out", "", "with -matrix: write per-cell JSON results and matrix.json here")
		benchOut   = flag.String("bench", "", "with -matrix: write go-bench-format cell lines here ('-' for stdout)")
		list       = flag.Bool("list", false, "list registry experiments and exit")

		metricsOut = flag.String("metrics", "", "write a Prometheus-style metrics snapshot here at exit ('-' for stdout)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /slow, /debug/vars and /debug/pprof on this address during the run")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	if *list {
		for _, e := range scenario.Entries() {
			tags := ""
			if e.PerKind {
				tags += " [per-kind]"
			}
			if !e.InAll {
				tags += " [not in all]"
			}
			fmt.Printf("%-20s %s%s\n", e.Name, e.Desc, tags)
		}
		return
	}

	// The chip-level experiments fan out over a single shard, so one
	// shard is enough for the CLI registry; the slow ring backs /slow.
	var reg *obs.Registry
	if *metricsOut != "" || *debugAddr != "" {
		reg = obs.NewRegistry(1)
		reg.KeepSlowest(32)
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug endpoint: http://%s/metrics\n", srv.Addr)
	}

	// SIGINT/SIGTERM cancel the run cooperatively: replay cells stop at
	// their next chunk boundary, unstarted cells are skipped, and the
	// matrix artifacts plus the -metrics snapshot below still flush with
	// whatever completed. A second signal kills the process.
	ctx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var runErr error
	if *matrixPath != "" {
		runErr = runMatrix(ctx, *matrixPath, *cellsRe, *outDir, *benchOut, reg)
	} else {
		runErr = runExp(ctx, *expID, *scaleStr, *kindStr, *requests, *workload, *policy, *shards, *devices, reg)
	}

	// The metrics snapshot lands before any failure exit, so an
	// interrupted (or failed) run still leaves its partial telemetry.
	if *metricsOut != "" {
		if err := obs.Dump(*metricsOut, reg); err != nil {
			log.Fatal(err)
		}
	}
	if runErr != nil {
		if ctx.Err() != nil {
			log.Printf("interrupted: %v", runErr)
			os.Exit(1)
		}
		log.Fatal(runErr)
	}
}

// runMatrix executes a declarative matrix file and prints a per-cell
// summary. Golden mismatches and cell errors are all reported (and the
// result artifacts written) before the returned error makes the command
// exit non-zero; flag and I/O mistakes stay fatal on the spot.
func runMatrix(ctx context.Context, path, cellsRe, outDir, benchOut string, reg *obs.Registry) error {
	m, err := scenario.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	opts := scenario.RunOptions{Obs: reg, ResultsDir: outDir, Ctx: ctx}
	if cellsRe != "" {
		re, err := regexp.Compile(cellsRe)
		if err != nil {
			log.Fatalf("-cells: %v", err)
		}
		opts.Filter = re
	}
	var benchFile *os.File
	switch benchOut {
	case "":
	case "-":
		opts.BenchWriter = os.Stdout
	default:
		benchFile, err = os.Create(benchOut)
		if err != nil {
			log.Fatal(err)
		}
		opts.BenchWriter = io.Writer(benchFile)
	}
	res, runErr := scenario.Run(m, opts)
	if benchFile != nil {
		if err := benchFile.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if res != nil {
		for _, c := range res.Cells {
			status := "ok"
			if c.Err != "" {
				status = "FAIL: " + c.Err
			} else if c.Golden != "" {
				status = "ok (golden " + c.Golden + ")"
			}
			fmt.Printf("== %s (%s, %.1fs) ==\n%s%-10s digest=%s  %s\n\n",
				c.Name, m.Name, c.Seconds, renderBlock(c.Render), c.Experiment, c.Digest, status)
		}
		fmt.Printf("matrix %s: %d cells, %d failed, %d shared-precondition executions\n",
			m.Name, len(res.Cells), len(res.Failed()), res.PrecondExecutions)
	}
	return runErr
}

// renderBlock newline-terminates a cell render for display.
func renderBlock(r string) string {
	if r == "" {
		return ""
	}
	return strings.TrimRight(r, "\n") + "\n"
}

// aliases maps historical CLI experiment ids to registry entries.
var aliases = map[string][]string{
	"fig4":      {"fig45"},
	"fig5":      {"fig45"},
	"fig15":     {"errcomp"},
	"fig16":     {"errcomp"},
	"fig17":     {"errcomp"},
	"fig18":     {"errcomp"},
	"ablations": {"ablation-placement", "ablation-tempbands", "ablation-delta", "ablation-combined"},
}

// runExp dispatches one -exp id (or "all") through the registry. Cell
// failures and cancellation return an error (so main can still flush
// the metrics snapshot); bad flag values stay fatal on the spot.
func runExp(ctx context.Context, expID, scaleStr, kindStr string, requests int, workload, policy string, shards, devices int, reg *obs.Registry) error {
	kinds := []string{"tlc", "qlc"}
	switch strings.ToLower(kindStr) {
	case "tlc":
		kinds = []string{"tlc"}
	case "qlc":
		kinds = []string{"qlc"}
	case "both":
	default:
		log.Fatalf("unknown kind %q", kindStr)
	}

	var ids []string
	switch {
	case expID == "all":
		for _, e := range scenario.Entries() {
			if e.InAll {
				ids = append(ids, e.Name)
			}
		}
	case aliases[expID] != nil:
		ids = aliases[expID]
	default:
		ids = []string{expID}
	}

	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("stopped before %s: %w", id, err)
		}
		entry, err := scenario.Lookup(id)
		if err != nil {
			log.Fatal(err)
		}
		runKinds := []string{""}
		if entry.PerKind {
			runKinds = kinds
		}
		for _, k := range runKinds {
			spec := scenario.Spec{
				Name:       strings.ReplaceAll(id, "/", "_"),
				Experiment: id,
				Scale:      scaleStr,
				Kind:       k,
				Requests:   requests,
				Workload:   workload,
				Policy:     policy,
				Shards:     shards,
				Devices:    devices,
			}
			label := id
			if k != "" {
				spec.Name = id + "_" + k
				label = id + "/" + k
			}
			res, err := scenario.RunCell(spec, scenario.RunOptions{Obs: reg, Ctx: ctx})
			if err != nil {
				return fmt.Errorf("%s: %w", label, err)
			}
			fmt.Printf("== %s (%s scale, %.1fs) ==\n%s\n",
				label, scaleName(scaleStr), res.Seconds, res.Render)
		}
	}
	return nil
}

// scaleName normalizes the -scale flag for display.
func scaleName(s string) string {
	if s == "" {
		return "quick"
	}
	return s
}
