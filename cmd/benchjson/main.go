// Command benchjson converts `go test -bench` output into a stable,
// machine-readable JSON document, optionally comparing the run against a
// recorded baseline. CI uses it to publish kernel benchmark numbers as an
// artifact; BENCH_PR3.json at the repository root was produced with it.
//
// Usage:
//
//	go test -bench ... -benchmem ./... | benchjson [-baseline file] [-o out]
//
// The input may also be given as a file argument. The output schema is
//
//	{
//	  "schema": "sentinel3d-bench-v1",
//	  "goos": "linux", "goarch": "amd64", "cpu": "...", "pkg": "...",
//	  "current":  {"Sense": {"iterations": N, "ns_per_op": ..., ...}},
//	  "baseline": { ... same shape, when -baseline is given ... },
//	  "comparison": {"Sense": {"speedup": ..., "alloc_reduction": ...}}
//	}
//
// Custom b.ReportMetric pairs (e.g. "req/s") are captured per result
// under "metrics" and compared as "metric_ratios" (current/baseline).
//
// A baseline file may be a previous benchjson document (its "baseline"
// map is preferred, then "current") or a bare name->result map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. BytesPerOp and AllocsPerOp are
// pointers so runs without -benchmem round-trip as absent, not zero.
type Result struct {
	Iterations  int64    `json:"iterations,omitempty"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric pairs (e.g. "req/s", "MB/s")
	// keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Comparison relates one benchmark's current run to its baseline.
type Comparison struct {
	// Speedup is baseline ns/op divided by current ns/op (>1 is faster).
	Speedup float64 `json:"speedup"`
	// AllocReduction is baseline allocs/op divided by current allocs/op;
	// it is omitted when either side lacks -benchmem data and set to
	// baseline allocs/op (the reduction factor toward zero) when the
	// current run reaches zero allocations.
	AllocReduction *float64 `json:"alloc_reduction,omitempty"`
	// MetricRatios maps custom metric units present in both runs to
	// current/baseline (>1 means the current run's metric is higher, so
	// for throughput metrics like "req/s" >1 is better).
	MetricRatios map[string]float64 `json:"metric_ratios,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Schema     string                `json:"schema"`
	Goos       string                `json:"goos,omitempty"`
	Goarch     string                `json:"goarch,omitempty"`
	CPU        string                `json:"cpu,omitempty"`
	Pkg        string                `json:"pkg,omitempty"`
	Current    map[string]Result     `json:"current"`
	Baseline   map[string]Result     `json:"baseline,omitempty"`
	Comparison map[string]Comparison `json:"comparison,omitempty"`
}

const schema = "sentinel3d-bench-v1"

// maxprocsSuffix is the -N GOMAXPROCS suffix go test appends to names.
var maxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine tokenizes one result row as a name, an iteration count
// and (value, unit) pairs: the fixed units fill Result's typed fields
// and anything else — b.ReportMetric output such as "req/s" — lands in
// Metrics. A line without an ns/op pair is not a benchmark result.
func parseBenchLine(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Result{}, false
	}
	name := maxprocsSuffix.ReplaceAllString(strings.TrimPrefix(f[0], "Benchmark"), "")
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil || name == "" {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			res.BytesPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[f[i+1]] = v
		}
	}
	if !sawNs {
		return "", Result{}, false
	}
	return name, res, true
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Schema: schema, Current: map[string]Result{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		for _, meta := range []struct {
			prefix string
			dst    *string
		}{
			{"goos: ", &doc.Goos}, {"goarch: ", &doc.Goarch},
			{"cpu: ", &doc.CPU}, {"pkg: ", &doc.Pkg},
		} {
			if v, ok := strings.CutPrefix(line, meta.prefix); ok {
				*meta.dst = v
			}
		}
		if name, res, ok := parseBenchLine(line); ok {
			doc.Current[name] = res // last run of a repeated name wins
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Current) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return doc, nil
}

func loadBaseline(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prev struct {
		Baseline map[string]Result `json:"baseline"`
		Current  map[string]Result `json:"current"`
	}
	if err := json.Unmarshal(raw, &prev); err == nil {
		if len(prev.Baseline) > 0 {
			return prev.Baseline, nil
		}
		if len(prev.Current) > 0 {
			return prev.Current, nil
		}
	}
	var bare map[string]Result
	if err := json.Unmarshal(raw, &bare); err != nil {
		return nil, fmt.Errorf("%s: not a benchjson document or result map: %w", path, err)
	}
	return bare, nil
}

func compare(base, cur map[string]Result) map[string]Comparison {
	out := map[string]Comparison{}
	for name, b := range base {
		c, ok := cur[name]
		if !ok || c.NsPerOp == 0 {
			continue
		}
		cmp := Comparison{Speedup: b.NsPerOp / c.NsPerOp}
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
			red := *b.AllocsPerOp
			if *c.AllocsPerOp > 0 {
				red = *b.AllocsPerOp / *c.AllocsPerOp
			}
			cmp.AllocReduction = &red
		}
		for unit, bv := range b.Metrics {
			cv, ok := c.Metrics[unit]
			if !ok || bv == 0 {
				continue
			}
			if cmp.MetricRatios == nil {
				cmp.MetricRatios = map[string]float64{}
			}
			cmp.MetricRatios[unit] = cv / bv
		}
		out[name] = cmp
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to embed and compare against")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	doc, err := parse(in)
	if err != nil {
		fail(err)
	}
	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			fail(err)
		}
		doc.Baseline = base
		doc.Comparison = compare(base, doc.Current)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
