// Command benchjson converts `go test -bench` output into a stable,
// machine-readable JSON document, optionally comparing the run against a
// recorded baseline. CI uses it to publish kernel benchmark numbers as an
// artifact; BENCH_PR3.json at the repository root was produced with it.
//
// Usage:
//
//	go test -bench ... -benchmem ./... | benchjson [-baseline file] [-o out]
//
// The input may also be given as a file argument. The output schema is
//
//	{
//	  "schema": "sentinel3d-bench-v1",
//	  "goos": "linux", "goarch": "amd64", "cpu": "...", "pkg": "...",
//	  "current":  {"Sense": {"iterations": N, "ns_per_op": ..., ...}},
//	  "baseline": { ... same shape, when -baseline is given ... },
//	  "comparison": {"Sense": {"speedup": ..., "alloc_reduction": ...}}
//	}
//
// A baseline file may be a previous benchjson document (its "baseline"
// map is preferred, then "current") or a bare name->result map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. BytesPerOp and AllocsPerOp are
// pointers so runs without -benchmem round-trip as absent, not zero.
type Result struct {
	Iterations  int64    `json:"iterations,omitempty"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Comparison relates one benchmark's current run to its baseline.
type Comparison struct {
	// Speedup is baseline ns/op divided by current ns/op (>1 is faster).
	Speedup float64 `json:"speedup"`
	// AllocReduction is baseline allocs/op divided by current allocs/op;
	// it is omitted when either side lacks -benchmem data and set to
	// baseline allocs/op (the reduction factor toward zero) when the
	// current run reaches zero allocations.
	AllocReduction *float64 `json:"alloc_reduction,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Schema     string                `json:"schema"`
	Goos       string                `json:"goos,omitempty"`
	Goarch     string                `json:"goarch,omitempty"`
	CPU        string                `json:"cpu,omitempty"`
	Pkg        string                `json:"pkg,omitempty"`
	Current    map[string]Result     `json:"current"`
	Baseline   map[string]Result     `json:"baseline,omitempty"`
	Comparison map[string]Comparison `json:"comparison,omitempty"`
}

const schema = "sentinel3d-bench-v1"

// benchLine matches one result row; the -N GOMAXPROCS suffix is folded
// into the name capture's lazy match.
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Schema: schema, Current: map[string]Result{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		for _, meta := range []struct {
			prefix string
			dst    *string
		}{
			{"goos: ", &doc.Goos}, {"goarch: ", &doc.Goarch},
			{"cpu: ", &doc.CPU}, {"pkg: ", &doc.Pkg},
		} {
			if v, ok := strings.CutPrefix(line, meta.prefix); ok {
				*meta.dst = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		res := Result{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, _ := strconv.ParseFloat(m[4], 64)
			res.BytesPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.ParseFloat(m[5], 64)
			res.AllocsPerOp = &a
		}
		doc.Current[m[1]] = res // last run of a repeated name wins
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Current) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return doc, nil
}

func loadBaseline(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prev struct {
		Baseline map[string]Result `json:"baseline"`
		Current  map[string]Result `json:"current"`
	}
	if err := json.Unmarshal(raw, &prev); err == nil {
		if len(prev.Baseline) > 0 {
			return prev.Baseline, nil
		}
		if len(prev.Current) > 0 {
			return prev.Current, nil
		}
	}
	var bare map[string]Result
	if err := json.Unmarshal(raw, &bare); err != nil {
		return nil, fmt.Errorf("%s: not a benchjson document or result map: %w", path, err)
	}
	return bare, nil
}

func compare(base, cur map[string]Result) map[string]Comparison {
	out := map[string]Comparison{}
	for name, b := range base {
		c, ok := cur[name]
		if !ok || c.NsPerOp == 0 {
			continue
		}
		cmp := Comparison{Speedup: b.NsPerOp / c.NsPerOp}
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
			red := *b.AllocsPerOp
			if *c.AllocsPerOp > 0 {
				red = *b.AllocsPerOp / *c.AllocsPerOp
			}
			cmp.AllocReduction = &red
		}
		out[name] = cmp
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to embed and compare against")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	doc, err := parse(in)
	if err != nil {
		fail(err)
	}
	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			fail(err)
		}
		doc.Baseline = base
		doc.Comparison = compare(base, doc.Current)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
