// Command benchjson converts `go test -bench` output into a stable,
// machine-readable JSON document, optionally comparing the run against a
// recorded baseline. CI uses it to publish kernel benchmark numbers as an
// artifact; BENCH_PR3.json at the repository root was produced with it.
//
// Usage:
//
//	go test -bench ... -benchmem ./... | benchjson [-baseline file] [-o out]
//
// The input may also be given as a file argument. The output schema is
//
//	{
//	  "schema": "sentinel3d-bench-v1",
//	  "goos": "linux", "goarch": "amd64", "cpu": "...", "pkg": "...",
//	  "current":  {"Sense": {"iterations": N, "ns_per_op": ..., ...}},
//	  "baseline": { ... same shape, when -baseline is given ... },
//	  "comparison": {"Sense": {"speedup": ..., "alloc_reduction": ...}}
//	}
//
// Custom b.ReportMetric pairs (e.g. "req/s") are captured per result
// under "metrics" and compared as "metric_ratios" (current/baseline).
//
// A baseline file may be a previous benchjson document (its "baseline"
// map is preferred, then "current") or a bare name->result map.
//
// -gate turns the tool into a CI check: each gate expression asserts a
// ratio and a failed assertion exits nonzero after the document is
// written. Two forms are accepted:
//
//	-gate 'ReplayShard8Metrics/ReplayShard8:req/s>=0.99'   # within-run ratio
//	-gate 'ReplayShard8:req/s>=0.95'                       # vs -baseline
//
// The first divides two results of the current run (immune to machine
// differences — CI uses it to hold the metrics overhead under 1%); the
// second divides current by baseline and requires -baseline. The unit
// is either a custom metric ("req/s") or "ns/op".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. BytesPerOp and AllocsPerOp are
// pointers so runs without -benchmem round-trip as absent, not zero.
type Result struct {
	Iterations  int64    `json:"iterations,omitempty"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric pairs (e.g. "req/s", "MB/s")
	// keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Comparison relates one benchmark's current run to its baseline.
type Comparison struct {
	// Speedup is baseline ns/op divided by current ns/op (>1 is faster).
	Speedup float64 `json:"speedup"`
	// AllocReduction is baseline allocs/op divided by current allocs/op;
	// it is omitted when either side lacks -benchmem data and set to
	// baseline allocs/op (the reduction factor toward zero) when the
	// current run reaches zero allocations.
	AllocReduction *float64 `json:"alloc_reduction,omitempty"`
	// MetricRatios maps custom metric units present in both runs to
	// current/baseline (>1 means the current run's metric is higher, so
	// for throughput metrics like "req/s" >1 is better).
	MetricRatios map[string]float64 `json:"metric_ratios,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Schema     string                `json:"schema"`
	Goos       string                `json:"goos,omitempty"`
	Goarch     string                `json:"goarch,omitempty"`
	CPU        string                `json:"cpu,omitempty"`
	Pkg        string                `json:"pkg,omitempty"`
	Current    map[string]Result     `json:"current"`
	Baseline   map[string]Result     `json:"baseline,omitempty"`
	Comparison map[string]Comparison `json:"comparison,omitempty"`
}

const schema = "sentinel3d-bench-v1"

// maxprocsSuffix is the -N GOMAXPROCS suffix go test appends to names.
var maxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine tokenizes one result row as a name, an iteration count
// and (value, unit) pairs: the fixed units fill Result's typed fields
// and anything else — b.ReportMetric output such as "req/s" — lands in
// Metrics. A line without an ns/op pair is not a benchmark result.
func parseBenchLine(line string) (string, Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Result{}, false
	}
	name := maxprocsSuffix.ReplaceAllString(strings.TrimPrefix(f[0], "Benchmark"), "")
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil || name == "" {
		return "", Result{}, false
	}
	res := Result{Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			res.BytesPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[f[i+1]] = v
		}
	}
	if !sawNs {
		return "", Result{}, false
	}
	return name, res, true
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Schema: schema, Current: map[string]Result{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		for _, meta := range []struct {
			prefix string
			dst    *string
		}{
			{"goos: ", &doc.Goos}, {"goarch: ", &doc.Goarch},
			{"cpu: ", &doc.CPU}, {"pkg: ", &doc.Pkg},
		} {
			if v, ok := strings.CutPrefix(line, meta.prefix); ok {
				*meta.dst = v
			}
		}
		if name, res, ok := parseBenchLine(line); ok {
			// Fastest of repeated runs (-count N) wins: the minimum is the
			// noise-robust statistic, which matters for gating.
			if prev, dup := doc.Current[name]; !dup || res.NsPerOp < prev.NsPerOp {
				doc.Current[name] = res
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Current) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return doc, nil
}

func loadBaseline(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prev struct {
		Baseline map[string]Result `json:"baseline"`
		Current  map[string]Result `json:"current"`
	}
	if err := json.Unmarshal(raw, &prev); err == nil {
		if len(prev.Baseline) > 0 {
			return prev.Baseline, nil
		}
		if len(prev.Current) > 0 {
			return prev.Current, nil
		}
	}
	var bare map[string]Result
	if err := json.Unmarshal(raw, &bare); err != nil {
		return nil, fmt.Errorf("%s: not a benchjson document or result map: %w", path, err)
	}
	return bare, nil
}

func compare(base, cur map[string]Result) map[string]Comparison {
	out := map[string]Comparison{}
	for name, b := range base {
		c, ok := cur[name]
		if !ok || c.NsPerOp == 0 {
			continue
		}
		cmp := Comparison{Speedup: b.NsPerOp / c.NsPerOp}
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
			red := *b.AllocsPerOp
			if *c.AllocsPerOp > 0 {
				red = *b.AllocsPerOp / *c.AllocsPerOp
			}
			cmp.AllocReduction = &red
		}
		for unit, bv := range b.Metrics {
			cv, ok := c.Metrics[unit]
			if !ok || bv == 0 {
				continue
			}
			if cmp.MetricRatios == nil {
				cmp.MetricRatios = map[string]float64{}
			}
			cmp.MetricRatios[unit] = cv / bv
		}
		out[name] = cmp
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// gate is one parsed -gate assertion: value(num)/value(den) cmp bound,
// where den is empty for the vs-baseline form.
type gate struct {
	expr     string
	num, den string // benchmark names
	unit     string
	ge       bool // true for >=, false for <=
	bound    float64
}

// parseGate parses 'Name[/Other]:unit>=0.99' (or <=).
func parseGate(expr string) (gate, error) {
	g := gate{expr: expr}
	op := ">="
	i := strings.Index(expr, op)
	if i < 0 {
		op = "<="
		i = strings.Index(expr, op)
	}
	if i < 0 {
		return g, fmt.Errorf("gate %q: no >= or <= comparison", expr)
	}
	g.ge = op == ">="
	b, err := strconv.ParseFloat(strings.TrimSpace(expr[i+len(op):]), 64)
	if err != nil {
		return g, fmt.Errorf("gate %q: bad bound: %w", expr, err)
	}
	g.bound = b
	lhs := expr[:i]
	j := strings.LastIndex(lhs, ":")
	if j < 0 || j == len(lhs)-1 {
		return g, fmt.Errorf("gate %q: missing :unit", expr)
	}
	g.unit = lhs[j+1:]
	names := lhs[:j]
	if k := strings.Index(names, "/"); k >= 0 {
		g.num, g.den = names[:k], names[k+1:]
	} else {
		g.num = names
	}
	if g.num == "" || (g.den == "" && strings.Contains(names, "/")) {
		return g, fmt.Errorf("gate %q: empty benchmark name", expr)
	}
	return g, nil
}

// metricOf extracts the gated unit from a result ("ns/op" is the typed
// field, anything else a custom metric).
func metricOf(res Result, unit string) (float64, bool) {
	if unit == "ns/op" {
		return res.NsPerOp, res.NsPerOp != 0
	}
	v, ok := res.Metrics[unit]
	return v, ok
}

// check evaluates the gate against the document and returns a
// human-readable verdict line plus pass/fail.
func (g gate) check(doc *Doc) (string, error) {
	lookup := func(m map[string]Result, name, side string) (float64, error) {
		res, ok := m[name]
		if !ok {
			return 0, fmt.Errorf("gate %q: no %s result %q", g.expr, side, name)
		}
		v, ok := metricOf(res, g.unit)
		if !ok || v == 0 {
			return 0, fmt.Errorf("gate %q: result %q has no %s", g.expr, name, g.unit)
		}
		return v, nil
	}
	num, err := lookup(doc.Current, g.num, "current")
	if err != nil {
		return "", err
	}
	var den float64
	if g.den != "" {
		den, err = lookup(doc.Current, g.den, "current")
	} else {
		if doc.Baseline == nil {
			return "", fmt.Errorf("gate %q: baseline form needs -baseline", g.expr)
		}
		den, err = lookup(doc.Baseline, g.num, "baseline")
	}
	if err != nil {
		return "", err
	}
	ratio := num / den
	op := ">="
	pass := ratio >= g.bound
	if !g.ge {
		op = "<="
		pass = ratio <= g.bound
	}
	line := fmt.Sprintf("gate %s: %.4f %s %g", g.expr, ratio, op, g.bound)
	if !pass {
		return "", fmt.Errorf("%s FAILED", line)
	}
	return line + " ok", nil
}

// gateFlags collects repeated -gate expressions.
type gateFlags []string

func (g *gateFlags) String() string     { return strings.Join(*g, ", ") }
func (g *gateFlags) Set(s string) error { *g = append(*g, s); return nil }

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to embed and compare against")
	out := flag.String("o", "", "output file (default stdout)")
	var gates gateFlags
	flag.Var(&gates, "gate", "ratio assertion like 'A/B:req/s>=0.99' (repeatable); a failed gate exits nonzero")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	doc, err := parse(in)
	if err != nil {
		fail(err)
	}
	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			fail(err)
		}
		doc.Baseline = base
		doc.Comparison = compare(base, doc.Current)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
	// Gates run after the document is written, so a failed check still
	// leaves the full numbers behind for diagnosis.
	if failed := runGates(gates, doc, os.Stderr); failed > 0 {
		fail(fmt.Errorf("%d of %d gates failed", failed, len(gates)))
	}
}

// runGates evaluates every gate expression against the document,
// printing one verdict line each, and returns the number of failures.
// Every gate runs and every failing ratio is printed before the caller
// exits nonzero — a CI run reports all regressions at once, not just
// the first.
func runGates(gates []string, doc *Doc, w io.Writer) int {
	failed := 0
	for _, expr := range gates {
		g, err := parseGate(expr)
		if err != nil {
			fmt.Fprintln(w, "benchjson:", err)
			failed++
			continue
		}
		line, err := g.check(doc)
		if err != nil {
			fmt.Fprintln(w, "benchjson:", err)
			failed++
			continue
		}
		fmt.Fprintln(w, "benchjson:", line)
	}
	return failed
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
