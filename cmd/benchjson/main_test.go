package main

import "strings"

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: sentinel3d/internal/flash
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSense-8         	     925	   2509989 ns/op	       0 B/op	       0 allocs/op
BenchmarkReadOpReuse     	    4207	    596256 ns/op	       1 B/op	       0 allocs/op
BenchmarkNoMem           	     100	     12345.5 ns/op
BenchmarkReplayShard8-8  	       5	 120000000 ns/op	   1666666 req/s	 9000000 B/op	    1200 allocs/op
PASS
ok  	sentinel3d/internal/flash	10.1s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Pkg != "sentinel3d/internal/flash" || doc.Goos != "linux" {
		t.Fatalf("metadata not captured: %+v", doc)
	}
	s, ok := doc.Current["Sense"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", doc.Current)
	}
	if s.Iterations != 925 || s.NsPerOp != 2509989 ||
		s.BytesPerOp == nil || *s.BytesPerOp != 0 ||
		s.AllocsPerOp == nil || *s.AllocsPerOp != 0 {
		t.Fatalf("Sense = %+v", s)
	}
	nm := doc.Current["NoMem"]
	if nm.NsPerOp != 12345.5 || nm.BytesPerOp != nil || nm.AllocsPerOp != nil {
		t.Fatalf("NoMem = %+v", nm)
	}
	if nm.Metrics != nil {
		t.Fatalf("NoMem grew metrics: %+v", nm)
	}
	rs := doc.Current["ReplayShard8"]
	if rs.Metrics["req/s"] != 1666666 || rs.NsPerOp != 120000000 ||
		rs.BytesPerOp == nil || *rs.BytesPerOp != 9000000 ||
		rs.AllocsPerOp == nil || *rs.AllocsPerOp != 1200 {
		t.Fatalf("ReplayShard8 = %+v", rs)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("expected error on benchmark-free input")
	}
}

func TestCompare(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	base := map[string]Result{
		"A": {NsPerOp: 200, AllocsPerOp: f(10)},
		"B": {NsPerOp: 300, AllocsPerOp: f(6), Metrics: map[string]float64{"req/s": 500000}},
		"C": {NsPerOp: 50}, // absent from current
	}
	cur := map[string]Result{
		"A": {NsPerOp: 100, AllocsPerOp: f(0)},
		"B": {NsPerOp: 150, AllocsPerOp: f(2), Metrics: map[string]float64{"req/s": 1500000}},
		"D": {NsPerOp: 1}, // absent from baseline
	}
	cmp := compare(base, cur)
	if len(cmp) != 2 {
		t.Fatalf("compare covered %v, want A and B only", cmp)
	}
	if a := cmp["A"]; a.Speedup != 2 || a.AllocReduction == nil || *a.AllocReduction != 10 {
		t.Fatalf("A = %+v (zero-alloc current should report baseline allocs)", a)
	}
	if b := cmp["B"]; b.Speedup != 2 || *b.AllocReduction != 3 || b.MetricRatios["req/s"] != 3 {
		t.Fatalf("B = %+v", b)
	}
	if a := cmp["A"]; a.MetricRatios != nil {
		t.Fatalf("A grew metric ratios: %+v", a)
	}
}
