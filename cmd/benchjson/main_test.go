package main

import "strings"

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: sentinel3d/internal/flash
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSense-8         	     925	   2509989 ns/op	       0 B/op	       0 allocs/op
BenchmarkReadOpReuse     	    4207	    596256 ns/op	       1 B/op	       0 allocs/op
BenchmarkNoMem           	     100	     12345.5 ns/op
BenchmarkReplayShard8-8  	       5	 120000000 ns/op	   1666666 req/s	 9000000 B/op	    1200 allocs/op
PASS
ok  	sentinel3d/internal/flash	10.1s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Pkg != "sentinel3d/internal/flash" || doc.Goos != "linux" {
		t.Fatalf("metadata not captured: %+v", doc)
	}
	s, ok := doc.Current["Sense"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", doc.Current)
	}
	if s.Iterations != 925 || s.NsPerOp != 2509989 ||
		s.BytesPerOp == nil || *s.BytesPerOp != 0 ||
		s.AllocsPerOp == nil || *s.AllocsPerOp != 0 {
		t.Fatalf("Sense = %+v", s)
	}
	nm := doc.Current["NoMem"]
	if nm.NsPerOp != 12345.5 || nm.BytesPerOp != nil || nm.AllocsPerOp != nil {
		t.Fatalf("NoMem = %+v", nm)
	}
	if nm.Metrics != nil {
		t.Fatalf("NoMem grew metrics: %+v", nm)
	}
	rs := doc.Current["ReplayShard8"]
	if rs.Metrics["req/s"] != 1666666 || rs.NsPerOp != 120000000 ||
		rs.BytesPerOp == nil || *rs.BytesPerOp != 9000000 ||
		rs.AllocsPerOp == nil || *rs.AllocsPerOp != 1200 {
		t.Fatalf("ReplayShard8 = %+v", rs)
	}
}

func TestParseRepeatedNameKeepsFastest(t *testing.T) {
	in := "BenchmarkX 10 200 ns/op 500 req/s\n" +
		"BenchmarkX 10 100 ns/op 900 req/s\n" +
		"BenchmarkX 10 300 ns/op 400 req/s\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	x := doc.Current["X"]
	if x.NsPerOp != 100 || x.Metrics["req/s"] != 900 {
		t.Fatalf("repeated name kept %+v, want the fastest run", x)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("expected error on benchmark-free input")
	}
}

func TestCompare(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	base := map[string]Result{
		"A": {NsPerOp: 200, AllocsPerOp: f(10)},
		"B": {NsPerOp: 300, AllocsPerOp: f(6), Metrics: map[string]float64{"req/s": 500000}},
		"C": {NsPerOp: 50}, // absent from current
	}
	cur := map[string]Result{
		"A": {NsPerOp: 100, AllocsPerOp: f(0)},
		"B": {NsPerOp: 150, AllocsPerOp: f(2), Metrics: map[string]float64{"req/s": 1500000}},
		"D": {NsPerOp: 1}, // absent from baseline
	}
	cmp := compare(base, cur)
	if len(cmp) != 2 {
		t.Fatalf("compare covered %v, want A and B only", cmp)
	}
	if a := cmp["A"]; a.Speedup != 2 || a.AllocReduction == nil || *a.AllocReduction != 10 {
		t.Fatalf("A = %+v (zero-alloc current should report baseline allocs)", a)
	}
	if b := cmp["B"]; b.Speedup != 2 || *b.AllocReduction != 3 || b.MetricRatios["req/s"] != 3 {
		t.Fatalf("B = %+v", b)
	}
	if a := cmp["A"]; a.MetricRatios != nil {
		t.Fatalf("A grew metric ratios: %+v", a)
	}
}

func TestParseGate(t *testing.T) {
	g, err := parseGate("ReplayShard8Metrics/ReplayShard8:req/s>=0.99")
	if err != nil {
		t.Fatal(err)
	}
	if g.num != "ReplayShard8Metrics" || g.den != "ReplayShard8" ||
		g.unit != "req/s" || !g.ge || g.bound != 0.99 {
		t.Fatalf("gate = %+v", g)
	}
	g, err = parseGate("Sense:ns/op<=1.05")
	if err != nil {
		t.Fatal(err)
	}
	if g.num != "Sense" || g.den != "" || g.unit != "ns/op" || g.ge || g.bound != 1.05 {
		t.Fatalf("gate = %+v", g)
	}
	for _, bad := range []string{
		"", "Sense", "Sense>=1", "Sense:req/s", "Sense:>=1", "Sense:req/s>=x",
	} {
		if _, err := parseGate(bad); err == nil {
			t.Errorf("parseGate(%q) accepted", bad)
		}
	}
}

func TestGateCheck(t *testing.T) {
	doc := &Doc{
		Current: map[string]Result{
			"Plain":   {NsPerOp: 100, Metrics: map[string]float64{"req/s": 1000}},
			"Metrics": {NsPerOp: 101, Metrics: map[string]float64{"req/s": 995}},
		},
		Baseline: map[string]Result{
			"Plain": {NsPerOp: 110, Metrics: map[string]float64{"req/s": 950}},
		},
	}
	mustPass := func(expr string) {
		t.Helper()
		g, err := parseGate(expr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.check(doc); err != nil {
			t.Errorf("%s: %v", expr, err)
		}
	}
	mustFail := func(expr string) {
		t.Helper()
		g, err := parseGate(expr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.check(doc); err == nil {
			t.Errorf("%s: passed, want failure", expr)
		}
	}
	mustPass("Metrics/Plain:req/s>=0.99") // 0.995
	mustFail("Metrics/Plain:req/s>=0.999")
	mustPass("Metrics/Plain:ns/op<=1.05") // 1.01
	mustFail("Metrics/Plain:ns/op<=1.001")
	mustPass("Plain:req/s>=1.0") // 1000/950 vs baseline
	mustFail("Plain:req/s>=1.1")
	mustFail("Missing/Plain:req/s>=1") // unknown numerator
	mustFail("Metrics:req/s>=0.5")     // no baseline entry for Metrics
	mustFail("Plain/Metrics:MB/s>=1")  // unit absent
	if _, err := (gate{expr: "x", num: "Plain", unit: "req/s", ge: true, bound: 1}).check(&Doc{
		Current: doc.Current, // baseline form without baseline map
	}); err == nil {
		t.Error("baseline-form gate without -baseline passed")
	}
}

// TestRunGatesAccumulates asserts a CI run reports every failing gate
// before exiting nonzero, instead of stopping at the first.
func TestRunGatesAccumulates(t *testing.T) {
	doc := &Doc{Current: map[string]Result{
		"Plain":   {NsPerOp: 100, Metrics: map[string]float64{"req/s": 1000}},
		"Metrics": {NsPerOp: 101, Metrics: map[string]float64{"req/s": 995}},
	}}
	var out strings.Builder
	failed := runGates([]string{
		"Metrics/Plain:req/s>=0.999", // fails: 0.995
		"not a gate",                 // fails: parse error
		"Metrics/Plain:req/s>=0.99",  // passes
		"Metrics/Plain:ns/op<=1.001", // fails: 1.01
	}, doc, &out)
	if failed != 3 {
		t.Errorf("failed = %d, want 3\n%s", failed, out.String())
	}
	for _, want := range []string{
		"Metrics/Plain:req/s>=0.999", "no >= or <=", "ns/op<=1.001", "req/s>=0.99",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if runGates(nil, doc, &out) != 0 {
		t.Error("no gates reported failures")
	}
}
