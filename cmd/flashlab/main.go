// Command flashlab is an interactive characterization bench for the
// simulated 3D NAND chips: build a chip, apply wear and retention, and
// inspect RBER, optimal read voltages and error-vs-offset sweeps — the
// Section II methodology of the paper on demand.
//
// Examples:
//
//	flashlab -kind qlc -pe 3000 -hours 8760 -wordlines 8
//	flashlab -kind tlc -pe 5000 -hours 8760 -temp 80 -sweep 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sentinel3d/internal/charlab"
	"sentinel3d/internal/experiments"
	"sentinel3d/internal/fault"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flashlab: ")
	var (
		kindStr   = flag.String("kind", "qlc", "cell technology: tlc or qlc")
		pe        = flag.Int("pe", 1000, "program/erase cycles of wear")
		hours     = flag.Float64("hours", 8760, "retention time in hours")
		temp      = flag.Float64("temp", 25, "retention temperature in C")
		wordlines = flag.Int("wordlines", 8, "number of wordlines to report")
		sweepV    = flag.Int("sweep", 0, "also print the error-vs-offset sweep of this voltage (0 = none)")
		seed      = flag.Uint64("seed", 1, "chip instance seed")
		full      = flag.Bool("full", false, "use full physical wordline width (slow)")
		workers   = flag.Int("workers", 0, "worker goroutines for per-wordline fan-out (0 = all CPUs); results are identical at any setting")

		faultStuck   = flag.Float64("fault-stuck", 0, "fraction of OOB-region cells stuck at an extreme Vth")
		faultOutlier = flag.Float64("fault-outlier", 0, "fraction of wordlines with an anomalous Vth shift")
		faultBurst   = flag.Float64("fault-burst", 0, "probability a read is hit by a transient sense-noise burst")
		faultSeed    = flag.Uint64("fault-seed", 0xfa17, "fault-injection seed (decisions are pure hashes of seed and address)")

		metricsOut = flag.String("metrics", "", "write a Prometheus-style metrics snapshot here at exit ('-' for stdout)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	// Bench-level instrumentation: what was measured and the RBER spread,
	// plus pprof on -debug-addr for profiling full-width runs.
	var reg *obs.Registry
	if *metricsOut != "" || *debugAddr != "" {
		reg = obs.NewRegistry(1)
	}
	set := reg.Set(0)
	wlMeasured := set.Counter("flashlab.wordlines", "wordlines characterized")
	rberHist := set.Hist("flashlab.page_rber", "raw bit error rate per page measurement")
	sweepPoints := set.Counter("flashlab.sweep_points", "error-vs-offset sweep points evaluated")
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug endpoint: http://%s/metrics\n", srv.Addr)
	}

	var kind flash.Kind
	switch strings.ToLower(*kindStr) {
	case "tlc":
		kind = flash.TLC
	case "qlc":
		kind = flash.QLC
	default:
		log.Fatalf("unknown kind %q (want tlc or qlc)", *kindStr)
	}
	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	cfg := scale.ChipConfig(kind, *seed)
	chip, err := flash.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := *wordlines
	if n > cfg.WordlinesPerBlock() {
		n = cfg.WordlinesPerBlock()
	}
	wls := make([]int, n)
	for i := range wls {
		wls[i] = i * cfg.WordlinesPerBlock() / n
	}
	// Each wordline gets its own RNG stream keyed by its index, so the
	// programmed data does not depend on the worker count.
	parallel.ForEach(len(wls), func(i int) {
		rng := mathx.NewRand(mathx.Mix(*seed^0xf1a5, uint64(wls[i])))
		chip.ProgramRandom(0, wls[i], rng)
	})
	chip.Cycle(0, *pe)
	chip.Age(0, *hours, *temp)

	if *faultStuck > 0 || *faultOutlier > 0 || *faultBurst > 0 {
		sw := chip.Model().P.StateWidth
		inj, err := fault.New(fault.Profile{
			Seed:              *faultSeed,
			SentinelStuckRate: *faultStuck,
			SentinelRegion:    [2]int{cfg.UserCells(), cfg.CellsPerWordline},
			StuckHighFraction: 0.5,
			OutlierWLRate:     *faultOutlier,
			OutlierShift:      0.5 * sw,
			BurstRate:         *faultBurst,
			BurstSigma:        0.25 * sw,
		})
		if err != nil {
			log.Fatal(err)
		}
		chip.SetFaults(inj)
		fmt.Printf("faults: stuck %.3g (OOB cells %d..%d), outlier WLs %.3g, bursts %.3g, seed %d\n",
			*faultStuck, cfg.UserCells(), cfg.CellsPerWordline, *faultOutlier, *faultBurst, *faultSeed)
	}

	fmt.Printf("chip: %v, %d layers x %d WL/layer, %d cells/WL, seed %d\n",
		kind, cfg.Layers, cfg.WordlinesPerLayer, cfg.CellsPerWordline, *seed)
	fmt.Printf("stress: %d P/E cycles, %.0f h at %.0f C (%.0f effective room-temp hours)\n\n",
		*pe, *hours, *temp, chip.Stress(0).EffRetentionHours)

	lab := charlab.New(chip)
	header := []string{"wordline", "layer"}
	for p := 0; p < kind.Bits(); p++ {
		header = append(header, chip.Coding().PageName(p)+" RBER")
	}
	header = append(header, "MSB RBER@opt", "Vsent opt")
	sv := chip.Coding().SentinelVoltage()
	rows := parallel.Map(len(wls), func(i int) []string {
		wl := wls[i]
		wlMeasured.Inc()
		row := []string{fmt.Sprint(wl), fmt.Sprint(chip.LayerOf(wl))}
		for p := 0; p < kind.Bits(); p++ {
			rber := lab.PageRBER(0, wl, p, nil)
			rberHist.Observe(rber)
			row = append(row, fmt.Sprintf("%.3g", rber))
		}
		opt := lab.OptimalOffsets(0, wl)
		return append(row,
			fmt.Sprintf("%.3g", lab.PageRBER(0, wl, kind.Bits()-1, opt)),
			fmt.Sprintf("%.1f", opt.Get(sv)))
	})
	fmt.Print(experiments.Table(header, rows))

	if *sweepV > 0 {
		if *sweepV > chip.Coding().NumVoltages() {
			log.Fatalf("voltage V%d out of range (max V%d)",
				*sweepV, chip.Coding().NumVoltages())
		}
		fmt.Printf("\nerror-vs-offset sweep of V%d on wordline %d:\n", *sweepV, wls[0])
		offs, errs := lab.SweepCurve(0, wls[0], *sweepV)
		sweepPoints.Add(int64(len(offs)))
		var b strings.Builder
		_, hi := mathx.MinMax(errs)
		for i, o := range offs {
			if int(o)%4 != 0 {
				continue
			}
			bar := int(errs[i] / (hi + 1) * 60)
			fmt.Fprintf(&b, "%6.0f %7.0f %s\n", o, errs[i], strings.Repeat("#", bar))
		}
		fmt.Print(b.String())
	}
	if *metricsOut != "" {
		if err := obs.Dump(*metricsOut, reg); err != nil {
			log.Fatal(err)
		}
	}
	os.Exit(0)
}
