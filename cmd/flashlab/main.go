// Command flashlab is an interactive characterization bench for the
// simulated 3D NAND chips: build a chip, apply wear and retention, and
// inspect RBER, optimal read voltages and error-vs-offset sweeps — the
// Section II methodology of the paper on demand. It is a thin front-end
// over the internal/scenario registry's "charlab" experiment.
//
// Examples:
//
//	flashlab -kind qlc -pe 3000 -hours 8760 -wordlines 8
//	flashlab -kind tlc -pe 5000 -hours 8760 -temp 80 -sweep 4
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flashlab: ")
	var (
		kindStr   = flag.String("kind", "qlc", "cell technology: tlc or qlc")
		pe        = flag.Int("pe", 1000, "program/erase cycles of wear")
		hours     = flag.Float64("hours", 8760, "retention time in hours")
		temp      = flag.Float64("temp", 25, "retention temperature in C")
		wordlines = flag.Int("wordlines", 8, "number of wordlines to report")
		sweepV    = flag.Int("sweep", 0, "also print the error-vs-offset sweep of this voltage (0 = none)")
		seed      = flag.Uint64("seed", 1, "chip instance seed")
		full      = flag.Bool("full", false, "use full physical wordline width (slow)")
		workers   = flag.Int("workers", 0, "worker goroutines for per-wordline fan-out (0 = all CPUs); results are identical at any setting")

		faultStuck   = flag.Float64("fault-stuck", 0, "fraction of OOB-region cells stuck at an extreme Vth")
		faultOutlier = flag.Float64("fault-outlier", 0, "fraction of wordlines with an anomalous Vth shift")
		faultBurst   = flag.Float64("fault-burst", 0, "probability a read is hit by a transient sense-noise burst")
		faultSeed    = flag.Uint64("fault-seed", 0xfa17, "fault-injection seed (decisions are pure hashes of seed and address)")

		metricsOut = flag.String("metrics", "", "write a Prometheus-style metrics snapshot here at exit ('-' for stdout)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	switch strings.ToLower(*kindStr) {
	case "tlc", "qlc":
	default:
		log.Fatalf("unknown kind %q (want tlc or qlc)", *kindStr)
	}
	scaleStr := "quick"
	if *full {
		scaleStr = "full"
	}

	var reg *obs.Registry
	if *metricsOut != "" || *debugAddr != "" {
		reg = obs.NewRegistry(1)
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug endpoint: http://%s/metrics\n", srv.Addr)
	}

	var fault *scenario.FaultSpec
	if *faultStuck > 0 || *faultOutlier > 0 || *faultBurst > 0 {
		fault = &scenario.FaultSpec{
			Seed:              *faultSeed,
			StuckRate:         *faultStuck,
			StuckHighFraction: 0.5,
			OutlierWLRate:     *faultOutlier,
			BurstRate:         *faultBurst,
		}
	}

	res, err := scenario.RunCell(scenario.Spec{
		Name:       "flashlab",
		Experiment: "charlab",
		Scale:      scaleStr,
		Kind:       strings.ToLower(*kindStr),
		PE:         *pe,
		Hours:      *hours,
		TempC:      *temp,
		Wordlines:  *wordlines,
		SweepV:     *sweepV,
		Seed:       *seed,
		Fault:      fault,
	}, scenario.RunOptions{Obs: reg})
	if err != nil {
		log.Fatal(err)
	}
	if fault != nil {
		fmt.Printf("faults: stuck %.3g, outlier WLs %.3g, bursts %.3g, seed %d\n",
			*faultStuck, *faultOutlier, *faultBurst, *faultSeed)
	}
	fmt.Print(res.Render)

	if *metricsOut != "" {
		if err := obs.Dump(*metricsOut, reg); err != nil {
			log.Fatal(err)
		}
	}
}
