// Command flashbench load-tests a running flashd: closed-loop (fixed
// per-tenant request quotas over a fixed worker pool — deterministic,
// the report's non-wall-clock section is byte-identical under a fixed
// seed) or open-loop (arrival-rate driven with ramp phases — the
// overload/soak mode). The final per-tenant report carries achieved
// rps, latency percentiles, SLO violations, and shed/degraded/fallback
// counts; flashbench exits nonzero when the status accounting identity
// does not hold.
//
// Quickstart:
//
//	flashd -no-limits &
//	flashbench -requests 2000 -det-report report.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sentinel3d/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flashbench:", err)
		os.Exit(1)
	}
}

func defaultBenchTenants(workers int, requests int64, rate float64) []serve.BenchTenant {
	return []serve.BenchTenant{
		{Name: "gold", Workers: workers, Requests: requests, RateRPS: 4 * rate, SLOMs: 20},
		{Name: "silver", Workers: workers, Requests: requests, RateRPS: 2 * rate, SLOMs: 50},
		{Name: "bronze", Workers: workers, Requests: requests, RateRPS: rate, SLOMs: 200},
	}
}

// parseRamp parses "2s:0.5,4s:1,2s:2" into load phases.
func parseRamp(s string) ([]serve.LoadPhase, error) {
	if s == "" {
		return nil, nil
	}
	var phases []serve.LoadPhase
	for _, part := range strings.Split(s, ",") {
		dur, scale, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("ramp phase %q is not duration:scale", part)
		}
		d, err := time.ParseDuration(dur)
		if err != nil {
			return nil, fmt.Errorf("ramp phase %q: %w", part, err)
		}
		var sc float64
		if _, err := fmt.Sscanf(scale, "%g", &sc); err != nil || sc <= 0 {
			return nil, fmt.Errorf("ramp phase %q: bad scale", part)
		}
		phases = append(phases, serve.LoadPhase{Duration: d, RateScale: sc})
	}
	return phases, nil
}

func run() error {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "flashd base URL")
		seed     = flag.Uint64("seed", 1, "arrival-stream seed")
		mode     = flag.String("mode", "closed", "closed | open")
		duration = flag.Duration("duration", 5*time.Second, "open-loop run length")
		ramp     = flag.String("ramp", "", "open-loop ramp phases, e.g. 2s:0.5,4s:1,2s:2")
		maxLPN   = flag.Int64("maxlpn", 50000, "LPN draw bound (match flashd's premap)")
		workers  = flag.Int("workers", 4, "closed-loop workers per tenant")
		requests = flag.Int64("requests", 1000, "closed-loop requests per tenant")
		rate     = flag.Float64("rate", 200, "open-loop base rate per tenant (req/s)")
		batch    = flag.Int("batch", 1, "reads per request")
		tenants  = flag.String("tenants", "", "bench tenant JSON file (default gold/silver/bronze)")
		report   = flag.String("report", "", "write full report JSON here (default stdout)")
		detOut   = flag.String("det-report", "", "also write the deterministic report rendering here")
	)
	flag.Parse()
	if *mode != "closed" && *mode != "open" {
		return fmt.Errorf("bad -mode %q", *mode)
	}
	phases, err := parseRamp(*ramp)
	if err != nil {
		return err
	}

	cfg := serve.BenchConfig{
		BaseURL:  strings.TrimRight(*addr, "/"),
		Seed:     *seed,
		MaxLPN:   *maxLPN,
		OpenLoop: *mode == "open",
		Duration: *duration,
		Phases:   phases,
	}
	if *tenants != "" {
		data, err := os.ReadFile(*tenants)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &cfg.Tenants); err != nil {
			return fmt.Errorf("tenants file %s: %w", *tenants, err)
		}
	} else {
		cfg.Tenants = defaultBenchTenants(*workers, *requests, *rate)
	}
	if *batch > 1 {
		for i := range cfg.Tenants {
			cfg.Tenants[i].BatchSize = *batch
		}
	}

	// SIGINT/SIGTERM cancels the run; the partial report still lands.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := serve.RunBench(ctx, cfg)
	if err != nil {
		return err
	}

	out := os.Stdout
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := rep.WriteJSON(out); err != nil {
		return err
	}
	if *detOut != "" {
		f, err := os.Create(*detOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.Deterministic().WriteJSON(f); err != nil {
			return err
		}
	}
	if err := rep.AccountingErr(); err != nil {
		return fmt.Errorf("accounting mismatch: %w", err)
	}
	return nil
}
