// Command tracesim replays block I/O traces against the SSD simulator,
// comparing read latency under the current-flash retry baseline and the
// sentinel policy (the paper's Figure 14 pipeline, usable with either the
// built-in synthetic MSR-like workloads or a real MSR-format CSV file).
//
// Examples:
//
//	tracesim -workload hm_0 -requests 20000
//	tracesim -trace volume.csv
//	tracesim -workload all
//	tracesim -workload hm_0 -fault-stuck 0.08 -fault-pe 0.0005 -fallback
//	tracesim -workload hm_0 -requests 2000000 -stream -shards 4 -workers 4
//	tracesim -workload hm_0 -metrics - -slow slow.jsonl
//	tracesim -workload all -debug-addr 127.0.0.1:6060
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/fault"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/ftl"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/ssdsim"
	"sentinel3d/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracesim: ")
	var (
		workload  = flag.String("workload", "hm_0", "built-in workload name or 'all'")
		traceFile = flag.String("trace", "", "MSR-format CSV trace file (overrides -workload)")
		requests  = flag.Int("requests", 10000, "requests to generate per workload")
		pe        = flag.Int("pe", 5000, "chip wear before the run")
		full      = flag.Bool("full", false, "use full physical wordline width for retry sampling (slow)")

		faultStuck  = flag.Float64("fault-stuck", 0, "fraction of OOB-region cells stuck high on the sampling chip")
		faultPE     = flag.Float64("fault-pe", 0, "FTL page-program fail rate (block-erase fails at 4x this rate)")
		faultSeed   = flag.Uint64("fault-seed", 0xfa17, "fault-injection seed")
		useFallback = flag.Bool("fallback", false, "also sample and replay the sentinel+fallback policy")

		workers = flag.Int("workers", 0, "replay worker goroutines (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 1, "device shards replayed concurrently (must divide the channel count)")
		stream  = flag.Bool("stream", false, "stream the trace through the engine with O(1) histogram latency stats instead of materializing it")

		metricsOut = flag.String("metrics", "", "write a Prometheus-style metrics snapshot here at exit ('-' for stdout)")
		slowOut    = flag.String("slow", "", "write the slowest-read trace as JSONL here at exit ('-' for stdout)")
		slowN      = flag.Int("slow-n", 32, "slow reads retained per shard for -slow / -debug-addr")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /slow, /debug/vars and /debug/pprof on this address during the run")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}

	// One registry instruments the whole stack: the chip-level controller
	// and sentinel engine (via scale.Obs) and every replay engine below
	// (via ReplayConfig.Metrics, sharded to match -shards).
	var reg *obs.Registry
	if *metricsOut != "" || *slowOut != "" || *debugAddr != "" {
		reg = obs.NewRegistry(*shards)
		reg.KeepSlowest(*slowN)
		scale.Obs = reg
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug endpoint: http://%s/metrics\n", srv.Addr)
	}

	// Chip-level retry distributions for both policies.
	model, err := scale.TrainModel(flash.TLC, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := scale.ChipConfig(flash.TLC, 2)
	eng, err := scale.Engine(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := scale.BuildEvalChip(flash.TLC, 2, eng, *pe, physics.YearHours)
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := scale.Controller(chip, 15)
	if err != nil {
		log.Fatal(err)
	}
	if *faultStuck > 0 {
		inj, err := fault.New(fault.Profile{
			Seed:              *faultSeed,
			SentinelStuckRate: *faultStuck,
			SentinelRegion:    [2]int{cfg.UserCells(), cfg.CellsPerWordline},
			StuckHighFraction: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		chip.SetFaults(inj)
		fmt.Printf("faults: %.3g of OOB cells stuck high (seed %d)\n", *faultStuck, *faultSeed)
	}
	var wls []int
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl += 2 {
		wls = append(wls, wl)
	}
	table := retry.NewDefaultTable(chip, 2)
	base, err := ssdsim.BuildSampler(ctl, table, 0, wls, 3, 11)
	if err != nil {
		log.Fatal(err)
	}
	sent, err := ssdsim.BuildSampler(ctl, retry.NewSentinelPolicy(eng), 0, wls, 3, 12)
	if err != nil {
		log.Fatal(err)
	}
	var fb *ssdsim.EmpiricalSampler
	if *useFallback {
		pol := retry.NewFallback(retry.NewSentinelPolicy(eng), table)
		pol.ProbeBlock(chip, 0, 0)
		fb, err = ssdsim.BuildSampler(ctl, pol, 0, wls, 3, 13)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fallback probe: block degraded = %v\n", pol.BlockDegraded(0))
	}
	fmt.Printf("chip MSB retries: current flash %.2f, sentinel %.2f", base.MeanRetries(2), sent.MeanRetries(2))
	if fb != nil {
		fmt.Printf(", fallback %.2f", fb.MeanRetries(2))
	}
	fmt.Print("\n\n")

	simCfg := ssdsim.DefaultConfig()
	simCfg.Geo = ftl.Geometry{
		Channels: 4, ChipsPerChan: 1, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 32, PagesPerBlock: 192,
	}
	if *faultPE > 0 {
		inj, err := fault.New(fault.Profile{
			Seed:               *faultSeed,
			FTLProgramFailRate: *faultPE,
			FTLEraseFailRate:   4 * *faultPE,
		})
		if err != nil {
			log.Fatal(err)
		}
		simCfg.PEFaults = inj
	}

	// Each workload is an Opener so traces can stream: with -stream the
	// engine pulls straight from the file or generator (memory stays
	// O(shards)); without it the trace is materialized once, exactly as
	// before.
	type workloadEntry struct {
		name string
		open trace.Opener
	}
	var workloads []workloadEntry
	if *traceFile != "" {
		if *stream {
			workloads = append(workloads, workloadEntry{*traceFile, trace.FileOpener(*traceFile)})
		} else {
			f, err := os.Open(*traceFile)
			if err != nil {
				log.Fatal(err)
			}
			reqs, err := trace.ParseMSR(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			workloads = append(workloads, workloadEntry{*traceFile, trace.SliceOpener(reqs)})
		}
	} else {
		specs := trace.MSRWorkloads()
		if *workload != "all" {
			spec, err := trace.WorkloadByName(*workload)
			if err != nil {
				log.Fatal(err)
			}
			specs = []trace.WorkloadSpec{spec}
		}
		for _, spec := range specs {
			spec.WorkingSetPages = int64(simCfg.Geo.PagesTotal()) * 6 / 10
			seed := mathx.Mix(7, uint64(len(spec.Name)))
			if *stream {
				workloads = append(workloads, workloadEntry{spec.Name, trace.GeneratorOpener(spec, *requests, seed)})
			} else {
				reqs, err := trace.Generate(spec, *requests, seed)
				if err != nil {
					log.Fatal(err)
				}
				workloads = append(workloads, workloadEntry{spec.Name, trace.SliceOpener(reqs)})
			}
		}
	}

	header := []string{"workload", "reads", "base µs", "sentinel µs", "reduction",
		"base p99", "sent p99"}
	if fb != nil {
		header = append(header, "fb µs", "fb degraded")
	}
	header = append(header, "uncorr b/s", "retired")
	var rows [][]string
	for _, w := range workloads {
		run := func(s ssdsim.RetrySampler) *ssdsim.Report {
			eng, err := ssdsim.NewEngine(ssdsim.ReplayConfig{
				Sim:              simCfg,
				Shards:           *shards,
				CollectLatencies: !*stream,
				Precondition:     true,
				Metrics:          reg,
			}, s)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := eng.Replay(w.open)
			if err != nil {
				log.Fatal(err)
			}
			return rep
		}
		b := run(base)
		s := run(sent)
		red := 0.0
		if b.MeanReadUS > 0 {
			red = 1 - s.MeanReadUS/b.MeanReadUS
		}
		row := []string{
			w.name, fmt.Sprint(b.Reads),
			fmt.Sprintf("%.0f", b.MeanReadUS), fmt.Sprintf("%.0f", s.MeanReadUS),
			experiments.Pct(red),
			fmt.Sprintf("%.0f", b.P99ReadUS), fmt.Sprintf("%.0f", s.P99ReadUS),
		}
		if fb != nil {
			f := run(fb)
			row = append(row, fmt.Sprintf("%.0f", f.MeanReadUS),
				fmt.Sprint(f.FallbackReads))
		}
		row = append(row,
			fmt.Sprintf("%d/%d", b.UncorrectableReads, s.UncorrectableReads),
			fmt.Sprint(b.RetiredBlocks))
		rows = append(rows, row)
	}
	fmt.Print(experiments.Table(header, rows))

	if *metricsOut != "" {
		if err := obs.Dump(*metricsOut, reg); err != nil {
			log.Fatal(err)
		}
	}
	if *slowOut != "" {
		if err := obs.DumpSlow(*slowOut, reg); err != nil {
			log.Fatal(err)
		}
	}
}
