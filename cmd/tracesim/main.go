// Command tracesim replays block I/O traces against the SSD simulator,
// comparing read latency under the current-flash retry baseline and the
// sentinel policy (the paper's Figure 14 pipeline, usable with either the
// built-in synthetic MSR-like workloads or a real MSR-format CSV file).
//
// Examples:
//
//	tracesim -workload hm_0 -requests 20000
//	tracesim -trace volume.csv
//	tracesim -workload all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/ftl"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/ssdsim"
	"sentinel3d/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracesim: ")
	var (
		workload  = flag.String("workload", "hm_0", "built-in workload name or 'all'")
		traceFile = flag.String("trace", "", "MSR-format CSV trace file (overrides -workload)")
		requests  = flag.Int("requests", 10000, "requests to generate per workload")
		pe        = flag.Int("pe", 5000, "chip wear before the run")
		full      = flag.Bool("full", false, "use full physical wordline width for retry sampling (slow)")
	)
	flag.Parse()

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}

	// Chip-level retry distributions for both policies.
	model, err := scale.TrainModel(flash.TLC, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := scale.ChipConfig(flash.TLC, 2)
	eng, err := scale.Engine(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := scale.BuildEvalChip(flash.TLC, 2, eng, *pe, physics.YearHours)
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := scale.Controller(chip, 15)
	if err != nil {
		log.Fatal(err)
	}
	var wls []int
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl += 2 {
		wls = append(wls, wl)
	}
	base, err := ssdsim.BuildSampler(ctl, retry.NewDefaultTable(chip, 2), 0, wls, 3, 11)
	if err != nil {
		log.Fatal(err)
	}
	sent, err := ssdsim.BuildSampler(ctl, retry.NewSentinelPolicy(eng), 0, wls, 3, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip MSB retries: current flash %.2f, sentinel %.2f\n\n",
		base.MeanRetries(2), sent.MeanRetries(2))

	simCfg := ssdsim.DefaultConfig()
	simCfg.Geo = ftl.Geometry{
		Channels: 4, ChipsPerChan: 1, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 32, PagesPerBlock: 192,
	}

	var workloads []struct {
		name string
		reqs []trace.Request
	}
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		reqs, err := trace.ParseMSR(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		workloads = append(workloads, struct {
			name string
			reqs []trace.Request
		}{*traceFile, reqs})
	} else {
		specs := trace.MSRWorkloads()
		if *workload != "all" {
			spec, err := trace.WorkloadByName(*workload)
			if err != nil {
				log.Fatal(err)
			}
			specs = []trace.WorkloadSpec{spec}
		}
		for _, spec := range specs {
			spec.WorkingSetPages = int64(simCfg.Geo.PagesTotal()) * 6 / 10
			reqs, err := trace.Generate(spec, *requests, mathx.Mix(7, uint64(len(spec.Name))))
			if err != nil {
				log.Fatal(err)
			}
			workloads = append(workloads, struct {
				name string
				reqs []trace.Request
			}{spec.Name, reqs})
		}
	}

	header := []string{"workload", "reads", "base µs", "sentinel µs", "reduction",
		"base p99", "sent p99"}
	var rows [][]string
	for _, w := range workloads {
		run := func(s ssdsim.RetrySampler) *ssdsim.Report {
			sim, err := ssdsim.New(simCfg, s)
			if err != nil {
				log.Fatal(err)
			}
			if err := sim.Precondition(w.reqs); err != nil {
				log.Fatal(err)
			}
			rep, err := sim.Run(w.reqs)
			if err != nil {
				log.Fatal(err)
			}
			return rep
		}
		b := run(base)
		s := run(sent)
		red := 0.0
		if b.MeanReadUS > 0 {
			red = 1 - s.MeanReadUS/b.MeanReadUS
		}
		rows = append(rows, []string{
			w.name, fmt.Sprint(b.Reads),
			fmt.Sprintf("%.0f", b.MeanReadUS), fmt.Sprintf("%.0f", s.MeanReadUS),
			experiments.Pct(red),
			fmt.Sprintf("%.0f", b.P99ReadUS), fmt.Sprintf("%.0f", s.P99ReadUS),
		})
	}
	fmt.Print(experiments.Table(header, rows))
}
