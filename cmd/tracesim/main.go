// Command tracesim replays block I/O traces against the SSD simulator,
// comparing read latency under the current-flash retry baseline and the
// sentinel policy (the paper's Figure 14 pipeline, usable with either the
// built-in synthetic MSR-like workloads or a real MSR-format CSV file).
// It is a thin front-end over internal/scenario: each (workload, policy)
// pair is one replay cell, and the expensive chip preconditioning is
// shared across all of them by the matrix runner.
//
// Examples:
//
//	tracesim -workload hm_0 -requests 20000
//	tracesim -trace volume.csv
//	tracesim -workload all
//	tracesim -workload hm_0 -fault-stuck 0.08 -fault-pe 0.0005 -fallback
//	tracesim -workload hm_0 -requests 2000000 -stream -shards 4 -workers 4
//	tracesim -workload hm_0 -metrics - -slow slow.jsonl
//	tracesim -workload all -debug-addr 127.0.0.1:6060
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/scenario"
	"sentinel3d/internal/ssdsim"
	"sentinel3d/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracesim: ")
	var (
		workload  = flag.String("workload", "hm_0", "built-in workload name or 'all'")
		traceFile = flag.String("trace", "", "MSR-format CSV trace file (overrides -workload)")
		requests  = flag.Int("requests", 10000, "requests to generate per workload")
		pe        = flag.Int("pe", 5000, "chip wear before the run")
		age       = flag.String("age", "", "dynamic aging: starting lifetime point (fresh, mid, worn); stress then evolves during the replay instead of staying frozen at -pe")
		schedule  = flag.String("schedule", "", "dynamic aging: ambient temperature schedule (room, hot, diurnal); implies lifetime mode like -age")
		full      = flag.Bool("full", false, "use full physical wordline width for retry sampling (slow)")

		faultStuck  = flag.Float64("fault-stuck", 0, "fraction of OOB-region cells stuck high on the sampling chip")
		faultPE     = flag.Float64("fault-pe", 0, "FTL page-program fail rate (block-erase fails at 4x this rate)")
		faultSeed   = flag.Uint64("fault-seed", 0xfa17, "fault-injection seed")
		useFallback = flag.Bool("fallback", false, "also sample and replay the sentinel+fallback policy")
		policyList  = flag.String("policies", "", "comma-separated policy set (table, sentinel, fallback, ar2, history, sentinel+history); replaces the default table-vs-sentinel comparison with a generic per-cell table")

		workers   = flag.Int("workers", 0, "replay worker goroutines (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 1, "device shards replayed concurrently (must divide the channel count)")
		devices   = flag.Int("devices", 1, "fleet devices the trace is striped across (RAID-0 by granule)")
		replicate = flag.Bool("replicate", false, "with -devices N: replicate instead of stripe (reads round-robin, writes fan out)")
		stream    = flag.Bool("stream", false, "stream the trace through the engine with O(1) histogram latency stats instead of materializing it")

		metricsOut = flag.String("metrics", "", "write a Prometheus-style metrics snapshot here at exit ('-' for stdout)")
		slowOut    = flag.String("slow", "", "write the slowest-read trace as JSONL here at exit ('-' for stdout)")
		slowN      = flag.Int("slow-n", 32, "slow reads retained per shard for -slow / -debug-addr")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /slow, /debug/vars and /debug/pprof on this address during the run")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	// SIGINT/SIGTERM cancel the matrix run cooperatively: streaming
	// replay cells stop at their next chunk boundary, unstarted cells
	// are skipped, and the metrics/slow-trace snapshots below still
	// flush whatever was serviced. A second signal kills the process.
	ctx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	scaleStr := "quick"
	if *full {
		scaleStr = "full"
	}

	// One registry instruments the whole stack: the chip-level controller
	// and sentinel engine (via the cell scale) and every replay engine
	// below (via ReplayConfig.Metrics, one registry shard per
	// (device, shard) target).
	var reg *obs.Registry
	if *metricsOut != "" || *slowOut != "" || *debugAddr != "" {
		reg = obs.NewRegistry(*shards * max(*devices, 1))
		reg.KeepSlowest(*slowN)
	}
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug endpoint: http://%s/metrics\n", srv.Addr)
	}

	// The policies column set: the static-table baseline and sentinel
	// by default (fallback on request), or whatever -policies names —
	// custom sets get a generic per-cell table instead of the
	// two-column comparison.
	policies := []string{"table", "sentinel"}
	custom := *policyList != ""
	if custom {
		policies = policies[:0]
		for _, p := range strings.Split(*policyList, ",") {
			if p = strings.TrimSpace(p); p != "" {
				policies = append(policies, p)
			}
		}
		if len(policies) == 0 {
			log.Fatal("-policies: empty policy list")
		}
	} else if *useFallback {
		policies = append(policies, "fallback")
	}

	var names []string
	switch {
	case *traceFile != "":
		names = []string{*traceFile}
	case *workload == "all":
		for _, spec := range trace.MSRWorkloads() {
			names = append(names, spec.Name)
		}
	default:
		if _, err := trace.WorkloadByName(*workload); err != nil {
			log.Fatal(err)
		}
		names = []string{*workload}
	}

	var fault *scenario.FaultSpec
	if *faultStuck > 0 || *faultPE > 0 {
		fault = &scenario.FaultSpec{
			Seed:              *faultSeed,
			StuckRate:         *faultStuck,
			StuckHighFraction: 1,
			ProgramFailRate:   *faultPE,
		}
	}

	// One cell per (workload, policy). The seed is pinned per workload so
	// every policy replays the identical trace; sanitize file paths into
	// legal cell names.
	m := &scenario.Matrix{Name: "tracesim"}
	for _, name := range names {
		seed := scenario.SplitSeed(7, name)
		for _, pol := range policies {
			spec := scenario.Spec{
				Name:       cellName(name) + "_" + pol,
				Experiment: "replay",
				Scale:      scaleStr,
				Policy:     pol,
				Requests:   *requests,
				PE:         *pe,
				Shards:     *shards,
				Devices:    *devices,
				Replicate:  *replicate,
				Seed:       seed,
				Collect:    !*stream,
				Fault:      fault,
				Age:        *age,
				Schedule:   *schedule,
			}
			if *traceFile != "" {
				spec.TraceFile = *traceFile
			} else {
				spec.Workload = name
			}
			m.Cells = append(m.Cells, spec)
		}
	}

	if *faultStuck > 0 {
		fmt.Printf("faults: %.3g of OOB cells stuck high (seed %d)\n", *faultStuck, *faultSeed)
	}

	res, runErr := scenario.Run(m, scenario.RunOptions{Obs: reg, KeepPayload: true, Ctx: ctx})
	if runErr != nil && ctx.Err() == nil {
		log.Fatal(runErr)
	}
	if ctx.Err() != nil {
		// Interrupted: some cells never produced payloads, so skip the
		// comparison table, flush the partial snapshots and exit non-zero.
		fmt.Println("interrupted: skipping comparison table, flushing partial metrics")
		dumpSnapshots(*metricsOut, *slowOut, reg)
		os.Exit(1)
	}

	// Cells are in matrix order: len(policies) per workload.
	byPolicy := func(i int, pol string) scenario.CellResult {
		for j, p := range policies {
			if p == pol {
				return res.Cells[i*len(policies)+j]
			}
		}
		panic("unknown policy " + pol)
	}
	if custom {
		// Generic per-(workload, policy) table: no assumptions about
		// which policies are present.
		fmt.Print("chip MSB retries:")
		for _, pol := range policies {
			fmt.Printf(" %s %.2f", pol, byPolicy(0, pol).Metrics["msb-retries"])
		}
		fmt.Print("\n\n")
		hdr := []string{"workload", "policy", "reads", "mean µs", "p99 µs", "uncorr", "retired"}
		var rows [][]string
		for i, name := range names {
			for _, pol := range policies {
				r := report(byPolicy(i, pol))
				rows = append(rows, []string{
					name, pol, fmt.Sprint(r.Reads),
					fmt.Sprintf("%.0f", r.MeanReadUS), fmt.Sprintf("%.0f", r.P99ReadUS),
					fmt.Sprint(r.UncorrectableReads), fmt.Sprint(r.RetiredBlocks),
				})
			}
		}
		fmt.Print(experiments.Table(hdr, rows))
		printPerDevice(*devices, *replicate, policies[0], names, byPolicy)
		dumpSnapshots(*metricsOut, *slowOut, reg)
		return
	}

	first := byPolicy(0, "table")
	fmt.Printf("chip MSB retries: current flash %.2f, sentinel %.2f",
		first.Metrics["msb-retries"], byPolicy(0, "sentinel").Metrics["msb-retries"])
	if *useFallback {
		fmt.Printf(", fallback %.2f", byPolicy(0, "fallback").Metrics["msb-retries"])
	}
	fmt.Print("\n\n")

	header := []string{"workload", "reads", "base µs", "sentinel µs", "reduction",
		"base p99", "sent p99"}
	if *useFallback {
		header = append(header, "fb µs", "fb degraded")
	}
	header = append(header, "uncorr b/s", "retired")
	var rows [][]string
	for i, name := range names {
		b := report(byPolicy(i, "table"))
		s := report(byPolicy(i, "sentinel"))
		red := 0.0
		if b.MeanReadUS > 0 {
			red = 1 - s.MeanReadUS/b.MeanReadUS
		}
		row := []string{
			name, fmt.Sprint(b.Reads),
			fmt.Sprintf("%.0f", b.MeanReadUS), fmt.Sprintf("%.0f", s.MeanReadUS),
			experiments.Pct(red),
			fmt.Sprintf("%.0f", b.P99ReadUS), fmt.Sprintf("%.0f", s.P99ReadUS),
		}
		if *useFallback {
			f := report(byPolicy(i, "fallback"))
			row = append(row, fmt.Sprintf("%.0f", f.MeanReadUS),
				fmt.Sprint(f.FallbackReads))
		}
		row = append(row,
			fmt.Sprintf("%d/%d", b.UncorrectableReads, s.UncorrectableReads),
			fmt.Sprint(b.RetiredBlocks))
		rows = append(rows, row)
	}
	fmt.Print(experiments.Table(header, rows))

	printPerDevice(*devices, *replicate, "sentinel", names, byPolicy)

	dumpSnapshots(*metricsOut, *slowOut, reg)
}

// printPerDevice breaks a fleet replay down per device for one policy —
// the rows come straight from the engine's PerDevice summaries. No-op
// for single-device runs.
func printPerDevice(devices int, replicate bool, policy string, names []string,
	byPolicy func(int, string) scenario.CellResult) {
	if devices <= 1 {
		return
	}
	mode := "striped"
	if replicate {
		mode = "replicated"
	}
	fmt.Printf("\nper-device breakdown, %s policy (%d devices, %s):\n", policy, devices, mode)
	hdr := []string{"workload", "device", "requests", "reads", "mean µs", "p99", "uncorr", "retired"}
	var drows [][]string
	for i, name := range names {
		for d, sum := range perDevice(byPolicy(i, policy)) {
			drows = append(drows, []string{
				name, fmt.Sprintf("dev%d", d),
				fmt.Sprint(sum.Requests), fmt.Sprint(sum.Reads),
				fmt.Sprintf("%.0f", sum.MeanReadUS), fmt.Sprintf("%.0f", sum.P99ReadUS),
				fmt.Sprint(sum.UncorrectableReads), fmt.Sprint(sum.RetiredBlocks),
			})
		}
	}
	fmt.Print(experiments.Table(hdr, drows))
}

// dumpSnapshots writes the metrics and slow-trace snapshots to their
// -metrics / -slow destinations (both optional). It runs on the clean
// path and on interrupt, so a canceled run still lands its partial
// snapshot.
func dumpSnapshots(metricsOut, slowOut string, reg *obs.Registry) {
	if metricsOut != "" {
		if err := obs.Dump(metricsOut, reg); err != nil {
			log.Fatal(err)
		}
	}
	if slowOut != "" {
		if err := obs.DumpSlow(slowOut, reg); err != nil {
			log.Fatal(err)
		}
	}
}

// report extracts a cell's replay summary (single-device or fleet).
func report(c scenario.CellResult) *ssdsim.ReportSummary {
	switch r := c.Payload.(type) {
	case *scenario.ReplayResult:
		return &r.Report
	case *scenario.LifetimeReplayResult:
		return &r.Report
	case *scenario.FleetReplayResult:
		return &r.Report
	default:
		log.Fatalf("cell %s: unexpected payload %T", c.Name, c.Payload)
		return nil
	}
}

// perDevice extracts a fleet cell's per-device summaries (nil for
// single-device cells).
func perDevice(c scenario.CellResult) []ssdsim.ReportSummary {
	if r, ok := c.Payload.(*scenario.FleetReplayResult); ok {
		return r.PerDevice
	}
	return nil
}

// cellName sanitizes a workload or file name into a legal cell name.
func cellName(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', ':', ' ', '\t':
			return '_'
		}
		return r
	}, name)
}
