// Command flashd is the flash-read server: it owns a sharded ssdsim
// fleet and serves JSON-over-HTTP reads with per-tenant QoS, request
// deadlines, bounded backpressure and a three-step overload ladder
// (see internal/serve). SIGINT/SIGTERM drain gracefully.
//
// Quickstart:
//
//	flashd -addr 127.0.0.1:8080 &
//	curl -s -X POST localhost:8080/read \
//	  -d '{"tenant":"gold","lpn":1234}'
//	curl -s localhost:8080/metrics | head
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"sentinel3d/internal/ftl"
	"sentinel3d/internal/serve"
	"sentinel3d/internal/ssdsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flashd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		shards  = flag.Int("shards", 4, "fleet shards (must divide channels)")
		queue   = flag.Int("queue", 256, "per-shard queue depth")
		seed    = flag.Uint64("seed", 42, "deterministic outcome seed")
		premap  = flag.Int64("premap", 0, "LPNs premapped at startup (0 = 60% of device)")
		chans   = flag.Int("channels", 4, "device channels")
		blocks  = flag.Int("blocks", 32, "blocks per plane")
		tenants = flag.String("tenants", "", "tenant roster JSON file (default built-in gold/silver/bronze)")
		noLimit = flag.Bool("no-limits", false, "zero every tenant rate limit (deterministic benches)")
		policy  = flag.String("policy", "", "override every tenant's retry sampler (sentinel, table, ar2, history, sentinel+history)")

		corrupt    = flag.Float64("fault-corrupt", 0, "per-page corruption probability [0,1]")
		stallMS    = flag.Int("fault-stall-ms", 0, "injected stall length per hit (0 = off)")
		stallEvery = flag.Int("fault-stall-every", 8, "stall every Nth request on the stalled shard")
		stallShard = flag.Int("fault-stall-shard", 0, "shard the stall injector targets")

		grace = flag.Duration("grace", 100*time.Millisecond, "slack past deadline before a late reply becomes 504")
		drain = flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget on SIGTERM")
	)
	flag.Parse()

	sim := ssdsim.DefaultConfig()
	sim.Geo = ftl.Geometry{Channels: *chans, ChipsPerChan: 1, DiesPerChip: 2,
		PlanesPerDie: 2, BlocksPerPlane: *blocks, PagesPerBlock: 192}
	sim.Seed = *seed

	cfg := serve.Config{
		Fleet: ssdsim.FleetConfig{
			Sim:         sim,
			Shards:      *shards,
			QueueDepth:  *queue,
			PremapPages: *premap,
			Samplers:    serve.DefaultSamplers(),
			CorruptRate: *corrupt,
		},
		Grace: *grace,
	}
	if *stallMS > 0 {
		every := int64(*stallEvery)
		if every < 1 {
			every = 1
		}
		var hits atomic.Int64
		target, d := *stallShard, time.Duration(*stallMS)*time.Millisecond
		cfg.Fleet.Stall = func(shard int) time.Duration {
			if shard != target {
				return 0
			}
			if hits.Add(1)%every == 0 {
				return d
			}
			return 0
		}
	}
	if *tenants != "" {
		data, err := os.ReadFile(*tenants)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &cfg.Tenants); err != nil {
			return fmt.Errorf("tenants file %s: %w", *tenants, err)
		}
	}
	if *noLimit {
		if len(cfg.Tenants) == 0 {
			cfg.Tenants = serve.DefaultTenants()
		}
		for i := range cfg.Tenants {
			cfg.Tenants[i].RatePerSec = 0
		}
	}
	if *policy != "" {
		if _, ok := cfg.Fleet.Samplers[*policy]; !ok {
			return fmt.Errorf("-policy %q: no such sampler (have sentinel, table, ar2, history, sentinel+history)", *policy)
		}
		if len(cfg.Tenants) == 0 {
			cfg.Tenants = serve.DefaultTenants()
		}
		for i := range cfg.Tenants {
			cfg.Tenants[i].Policy = *policy
		}
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if err := srv.Start(*addr); err != nil {
		return err
	}
	fmt.Printf("flashd: serving on %s (%d shards, premap %d LPNs, seed %d)\n",
		srv.Addr(), srv.Fleet().Shards(), srv.Fleet().PremapPages(), *seed)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Println("flashd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("flashd: drained cleanly")
	return nil
}
