// Package sentinel3d_test hosts the benchmark harness that regenerates
// every table and figure of the paper's evaluation. Each benchmark runs
// one experiment end to end and reports its headline quantity as a custom
// metric alongside the usual time/allocation numbers.
//
// Scale selection: benchmarks default to the quick scale; set
// SENTINEL3D_SCALE=full for paper-fidelity wordline widths (much slower):
//
//	go test -bench=. -benchmem                   # quick
//	SENTINEL3D_SCALE=full go test -bench=Fig13   # full fidelity
//
// Worker selection: the experiments fan out per-wordline work across
// all CPUs by default; SENTINEL3D_WORKERS pins the worker count (the
// reported metrics are identical at any setting, only the time/op
// changes). BenchmarkParallelSpeedup compares 1 worker against all
// CPUs directly.
package sentinel3d_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
)

func TestMain(m *testing.M) {
	if v := os.Getenv("SENTINEL3D_WORKERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad SENTINEL3D_WORKERS %q: %v\n", v, err)
			os.Exit(2)
		}
		parallel.SetWorkers(n)
	}
	os.Exit(m.Run())
}

func benchScale() experiments.Scale {
	if os.Getenv("SENTINEL3D_SCALE") == "full" {
		return experiments.Full()
	}
	return experiments.Quick()
}

// BenchmarkParallelSpeedup runs a fan-out-heavy experiment at one worker
// and at all CPUs; the ratio of the two times is the parallel speedup of
// the experiment engine on this machine. The trained-model cache is
// warmed first so neither sub-benchmark pays the one-off training cost.
func BenchmarkParallelSpeedup(b *testing.B) {
	s := benchScale()
	if _, err := experiments.Fig13RetryCount(s); err != nil {
		b.Fatal(err)
	}
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			defer parallel.SetWorkers(parallel.SetWorkers(w))
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig13RetryCount(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig2ErrorVsOffset(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2ErrorVsOffset(s)
		if err != nil {
			b.Fatal(err)
		}
		// Report the valley depth of the sentinel voltage.
		errs := r.Errors[3]
		minV := errs[0]
		for _, e := range errs {
			if e < minV {
				minV = e
			}
		}
		b.ReportMetric(errs[0]/(minV+1), "edge/min_errors")
	}
}

func BenchmarkFig3LayerRBER(b *testing.B) {
	s := benchScale()
	for _, kind := range []flash.Kind{flash.TLC, flash.QLC} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.Fig3LayerRBER(s, kind)
				if err != nil {
					b.Fatal(err)
				}
				var worstDef, worstOpt float64
				for _, row := range r.Rows {
					if row.PE == 5000 && row.DefaultMax > worstDef {
						worstDef = row.DefaultMax
					}
					if row.PE == 5000 && row.OptimalMax > worstOpt {
						worstOpt = row.OptimalMax
					}
				}
				b.ReportMetric(worstDef/worstOpt, "default/optimal_RBER")
			}
		})
	}
}

func BenchmarkFig4TemperatureRBER(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig45Temperature(s)
		if err != nil {
			b.Fatal(err)
		}
		msb := len(r.RoomRBER) - 1
		b.ReportMetric(mathx.Mean(r.HotRBER[msb])/mathx.Mean(r.RoomRBER[msb]),
			"hot/room_RBER")
	}
}

func BenchmarkFig5TemperatureVopt(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig45Temperature(s)
		if err != nil {
			b.Fatal(err)
		}
		// V8 optimum shift caused by one hot hour.
		b.ReportMetric(mathx.Mean(r.RoomOpt[2])-mathx.Mean(r.HotOpt[2]),
			"V8_hot_shift")
	}
}

func BenchmarkFig6LayerVopt(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6LayerOptima(s)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := mathx.MinMax(r.Opt[7])
		b.ReportMetric(hi-lo, "V8_layer_range")
	}
}

func BenchmarkFig7ErrorMap(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7ErrorMap(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.UniformityChi2, "alongWL_chi2")
		b.ReportMetric(r.WordlineVariation, "acrossWL_cv")
	}
}

func BenchmarkFig8Correlation(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8Correlation(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.StrongCount(0.8)), "strong_voltages")
	}
}

func BenchmarkFig10InferenceFit(b *testing.B) {
	s := benchScale()
	for _, kind := range []flash.Kind{flash.TLC, flash.QLC} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.Fig10InferenceFit(s, kind)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.MeanAbsError(), "mean_abs_error")
			}
		})
	}
}

func BenchmarkTable1SentinelRatio(b *testing.B) {
	s := benchScale()
	for _, kind := range []flash.Kind{flash.TLC, flash.QLC} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.Table1SentinelRatio(s, kind)
				if err != nil {
					b.Fatal(err)
				}
				for _, row := range r.Rows {
					if row.Ratio == 0.002 { // the paper's chosen point
						b.ReportMetric(row.Mean, "mean_offset_error@0.2%")
					}
				}
			}
		})
	}
}

func BenchmarkFig12StateChange(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12StateChange(s)
		if err != nil {
			b.Fatal(err)
		}
		// Case separation: NC(-8)/NC(+8) should be well above 1.
		b.ReportMetric(r.Normalized[0]/r.Normalized[len(r.Normalized)-1],
			"case2/case1_NC")
	}
}

func BenchmarkFig13RetryCount(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13RetryCount(s)
		if err != nil {
			b.Fatal(err)
		}
		table, sentinel, reduction := r.Averages()
		b.ReportMetric(table, "table_retries")
		b.ReportMetric(sentinel, "sentinel_retries")
		b.ReportMetric(reduction*100, "retry_reduction_%")
	}
}

func BenchmarkFig14TraceLatency(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14TraceLatency(s, 4000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanReduction()*100, "read_latency_reduction_%")
	}
}

func BenchmarkFig15InferenceAccuracy(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ErrorComparison(s, flash.QLC)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OverallSuccess(experiments.MethodInferred)*100,
			"inference_success_%")
		b.ReportMetric(r.OverallSuccess(experiments.MethodCalibrated)*100,
			"calibrated_success_%")
	}
}

func BenchmarkFig16TLCErrors(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ErrorComparison(s, flash.TLC)
		if err != nil {
			b.Fatal(err)
		}
		d := r.MeanErrors(experiments.MethodDefault)
		c := r.MeanErrors(experiments.MethodCalibrated)
		b.ReportMetric(mathx.Mean(d[1:])/(mathx.Mean(c[1:])+1), "default/calibrated_errors")
	}
}

func BenchmarkFig17QLCErrors(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ErrorComparison(s, flash.QLC)
		if err != nil {
			b.Fatal(err)
		}
		d := r.MeanErrors(experiments.MethodDefault)
		c := r.MeanErrors(experiments.MethodCalibrated)
		b.ReportMetric(mathx.Mean(d[1:])/(mathx.Mean(c[1:])+1), "default/calibrated_errors")
	}
}

func BenchmarkFig18Tracking(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ErrorComparison(s, flash.QLC)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, v := range []int{4, 8, 11, 15} {
			if f := r.TrackingHurtFraction(v); f > worst {
				worst = f
			}
		}
		b.ReportMetric(worst*100, "tracking_hurt_wordlines_%")
	}
}

func BenchmarkFig19LDPC(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig19LDPC(s)
		if err != nil {
			b.Fatal(err)
		}
		opt, _ := r.SuccessRate(5000, 3, experiments.Fig19OPT)
		sent, _ := r.SuccessRate(5000, 3, experiments.Fig19Sentinel)
		b.ReportMetric(opt*100, "OPT_3bit_PE5000_%")
		b.ReportMetric(sent*100, "sentinel_3bit_PE5000_%")
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationPlacement(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblatePlacement(s, flash.QLC)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TailMean, "tail_infer_error")
		b.ReportMetric(r.SpreadMean, "spread_infer_error")
	}
}

func BenchmarkAblationCalibrationDelta(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblateCalibrationDelta(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Delta == 4 {
				b.ReportMetric(row.MeanRetries, "retries@delta4")
			}
		}
	}
}

func BenchmarkAblationCombined(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblateCombined(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CombinedFirstOK*100, "combined_first_read_ok_%")
	}
}

func BenchmarkAblationTempBands(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.TempBandExperiment(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RoomTableErr, "room_table_error")
		b.ReportMetric(r.BandTableErr, "band_table_error")
	}
}
