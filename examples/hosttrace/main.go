// Hosttrace replays a synthetic MSR-like server workload through the
// trace-driven SSD simulator twice — once with the current-flash retry
// distribution, once with the sentinel policy's — and reports the
// end-to-end read-latency difference (the paper's Figure 14 pipeline for
// one workload).
package main

import (
	"fmt"
	"log"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/ftl"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/ssdsim"
	"sentinel3d/internal/trace"
)

func main() {
	log.SetFlags(0)
	scale := experiments.Quick()

	// Chip-level retry behaviour under both policies.
	model, err := scale.TrainModel(flash.TLC, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := scale.ChipConfig(flash.TLC, 5)
	eng, err := scale.Engine(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := scale.BuildEvalChip(flash.TLC, 5, eng, 5000, physics.YearHours)
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := scale.Controller(chip, 15)
	if err != nil {
		log.Fatal(err)
	}
	var wls []int
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl += 2 {
		wls = append(wls, wl)
	}
	base, err := ssdsim.BuildSampler(ctl, retry.NewDefaultTable(chip, 2), 0, wls, 3, 21)
	if err != nil {
		log.Fatal(err)
	}
	sent, err := ssdsim.BuildSampler(ctl, retry.NewSentinelPolicy(eng), 0, wls, 3, 22)
	if err != nil {
		log.Fatal(err)
	}

	// The workload: the MSR hm_0 (hardware-monitor volume) stand-in.
	spec, err := trace.WorkloadByName("hm_0")
	if err != nil {
		log.Fatal(err)
	}
	simCfg := ssdsim.DefaultConfig()
	simCfg.Geo = ftl.Geometry{
		Channels: 4, ChipsPerChan: 1, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 32, PagesPerBlock: 192,
	}
	spec.WorkingSetPages = int64(simCfg.Geo.PagesTotal()) * 6 / 10
	reqs, err := trace.Generate(spec, 10000, 7)
	if err != nil {
		log.Fatal(err)
	}
	st := trace.Summarize(reqs)
	fmt.Printf("workload %s: %d requests, %.0f%% reads, %.1f pages/request\n\n",
		spec.Name, st.Requests, st.ReadFrac*100, st.AvgPages)

	run := func(name string, sampler ssdsim.RetrySampler) *ssdsim.Report {
		sim, err := ssdsim.New(simCfg, sampler)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Precondition(reqs); err != nil {
			log.Fatal(err)
		}
		rep, err := sim.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s mean read %6.0f µs   p95 %6.0f   p99 %6.0f   retries %d\n",
			name, rep.MeanReadUS, rep.P95ReadUS, rep.P99ReadUS, rep.TotalRetries)
		return rep
	}
	b := run("current flash", base)
	s := run("sentinel", sent)
	fmt.Printf("\nread-latency reduction: %.0f%%\n", 100*(1-s.MeanReadUS/b.MeanReadUS))
}
