// Quickstart: build a simulated QLC chip, age it a year, and compare how
// many read retries the stock retry table needs against the paper's
// sentinel inference.
package main

import (
	"fmt"
	"log"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
)

func main() {
	log.SetFlags(0)
	scale := experiments.Quick()

	// 1. Manufacturing time: characterize one chip of the batch and fit
	//    the inference model (f(d) + per-voltage correlations).
	model, err := scale.TrainModel(flash.QLC, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained model: sentinel voltage V%d, f(d) degree %d\n",
		model.SentinelVoltage, model.F.Degree())

	// 2. Deployment: a different chip of the same batch, written with the
	//    sentinel pattern, worn to 1000 P/E cycles and left for a year.
	cfg := scale.ChipConfig(flash.QLC, 99)
	eng, err := scale.Engine(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := scale.BuildEvalChip(flash.QLC, 99, eng, 1000, physics.YearHours)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Read MSB pages under both policies.
	ctl, err := scale.Controller(chip, 15)
	if err != nil {
		log.Fatal(err)
	}
	table := retry.NewDefaultTable(chip, 2)
	sentinelPolicy := retry.NewSentinelPolicy(eng)
	msb := chip.Coding().Bits() - 1

	var tSum, sSum, tLat, sLat float64
	n := chip.Config().WordlinesPerBlock()
	for wl := 0; wl < n; wl++ {
		rT := ctl.Read(0, wl, msb, table, uint64(wl)*2)
		rS := ctl.Read(0, wl, msb, sentinelPolicy, uint64(wl)*2+1)
		tSum += float64(rT.Retries)
		sSum += float64(rS.Retries)
		tLat += rT.Latency
		sLat += rS.Latency
	}
	fmt.Printf("MSB reads over %d wordlines (P/E 1000, 1-year retention):\n", n)
	fmt.Printf("  current flash: %.2f retries/read, %.0f µs/read\n",
		tSum/float64(n), tLat/float64(n))
	fmt.Printf("  sentinel:      %.2f retries/read, %.0f µs/read\n",
		sSum/float64(n), sLat/float64(n))
	fmt.Printf("  retry reduction: %.0f%%, latency reduction: %.0f%%\n",
		100*(1-sSum/tSum), 100*(1-sLat/tLat))
}
