// Characterize reproduces the paper's Section II methodology on one
// simulated QLC chip: RBER and optimal read voltages across layers,
// temperature acceleration, error-position locality, and the correlation
// between per-voltage optima that justifies the sentinel voltage.
package main

import (
	"fmt"
	"log"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/flash"
)

func main() {
	log.SetFlags(0)
	scale := experiments.Quick()

	fig3, err := experiments.Fig3LayerRBER(scale, flash.QLC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig3.Render())

	fig45, err := experiments.Fig45Temperature(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig45.Render())

	fig7, err := experiments.Fig7ErrorMap(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig7.Render())

	fig8, err := experiments.Fig8Correlation(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig8.Render())
	fmt.Printf("strongly correlated voltages (|r| >= 0.8, excluding V1): %d of 14\n",
		fig8.StrongCount(0.8))
}
