// Batchmodel demonstrates the manufacturing workflow of Section III-D:
// characterize ONE chip of a production batch, fit the inference model
// (with per-temperature correlation bands), serialize it — the blob that
// would be programmed into every chip of the batch — and then use the
// deserialized model on a DIFFERENT chip instance, including a hot read.
package main

import (
	"bytes"
	"fmt"
	"log"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/sentinel"
)

func main() {
	log.SetFlags(0)
	scale := experiments.Quick()

	// --- Factory side: train on chip #1 with temperature bands. ---
	factoryChip, err := flash.New(scale.ChipConfig(flash.QLC, 1))
	if err != nil {
		log.Fatal(err)
	}
	tc := sentinel.TrainConfig{
		Points: []sentinel.StressPoint{
			{PECycles: 0, Hours: 24, TempC: physics.RoomTempC},
			{PECycles: 1000, Hours: 720, TempC: physics.RoomTempC},
			{PECycles: 1000, Hours: physics.YearHours, TempC: physics.RoomTempC},
			{PECycles: 3000, Hours: 2000, TempC: physics.RoomTempC},
			{PECycles: 3000, Hours: physics.YearHours, TempC: physics.RoomTempC},
			{PECycles: 5000, Hours: 4380, TempC: physics.RoomTempC},
		},
		WordlinesPerPoint: 12,
		Layout:            scale.Layout(),
		PolyDegree:        5,
		MeasureReads:      2,
		Seed:              0xfac702,
		TempBandsC:        []float64{45, 100},
	}
	model, err := sentinel.Train(factoryChip, tc)
	if err != nil {
		log.Fatal(err)
	}
	var blob bytes.Buffer
	if err := model.Save(&blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factory: trained V%d model, %d temperature bands, blob %d bytes\n",
		model.SentinelVoltage, len(model.Bands), blob.Len())

	// --- Field side: a different chip of the same batch loads the blob. ---
	loaded, err := sentinel.LoadModel(&blob)
	if err != nil {
		log.Fatal(err)
	}
	fieldCfg := scale.ChipConfig(flash.QLC, 777)
	eng, err := sentinel.NewEngine(loaded, scale.Layout(),
		sentinel.DefaultCalibrator(), fieldCfg)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := scale.BuildEvalChip(flash.QLC, 777, eng, 2000, physics.YearHours)
	if err != nil {
		log.Fatal(err)
	}

	// Read hot: the controller's thermal sensor selects the hot band.
	const hotC = 80
	chip.SetReadTemperature(0, hotC)
	eng.SetTemperature(hotC)

	wl := 5
	sense := chip.Sense(0, wl, loaded.SentinelVoltage, 0, 42)
	d, offsets := eng.Infer(sense)
	fmt.Printf("field chip, wordline %d read at %d C: d = %.4f\n", wl, hotC, d)
	fmt.Printf("  inferred offsets (hot band):  V2 %.1f  V8 %.1f  V15 %.1f\n",
		offsets.Get(2), offsets.Get(8), offsets.Get(15))
	room := loaded.OffsetsFromSentinelAt(offsets.Get(loaded.SentinelVoltage),
		physics.RoomTempC)
	fmt.Printf("  (room table would have said:  V2 %.1f  V8 %.1f  V15 %.1f)\n",
		room.Get(2), room.Get(8), room.Get(15))

	// Show the benefit: raw errors at hot-band vs room-table offsets.
	errsAt := func(o flash.Offsets) int {
		n := 0
		for v := 2; v <= 15; v++ {
			up, down := chip.VoltageErrors(0, wl, v, o.Get(v), mathx.Mix(9, uint64(v)))
			n += up + down
		}
		return n
	}
	fmt.Printf("  raw errors across V2..V15: hot band %d, room table %d\n",
		errsAt(offsets), errsAt(room))
}
