// Calibration walks a single wordline through the paper's full read-path
// story: the default read fails, the error difference on the sentinel
// cells infers a near-optimal voltage, and — when the inference is off —
// the state-change comparison (NCa vs NCs/r) steers ±Δ calibration steps.
package main

import (
	"fmt"
	"log"

	"sentinel3d/internal/charlab"
	"sentinel3d/internal/experiments"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/sentinel"
)

func main() {
	log.SetFlags(0)
	scale := experiments.Quick()

	model, err := scale.TrainModel(flash.QLC, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := scale.ChipConfig(flash.QLC, 424)
	eng, err := scale.Engine(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := scale.BuildEvalChip(flash.QLC, 424, eng, 2000, physics.YearHours)
	if err != nil {
		log.Fatal(err)
	}
	lab := charlab.New(chip)
	sv := model.SentinelVoltage
	cap := scale.CapModel(flash.QLC)
	userBits := cfg.UserCells()

	// Pick the wordline whose inference lands farthest from the truth
	// among those whose optimum is actually decodable — the interesting
	// calibration case.
	decodableAtOptimum := func(wl int) bool {
		opt := lab.OptimalOffsets(0, wl)
		read := chip.ReadPage(0, wl, chip.Coding().Bits()-1, opt, uint64(wl)+7777)
		truthBits := chip.TrueBits(0, wl, chip.Coding().Bits()-1)
		errs := make(flash.Bitmap, len(read))
		for i := range errs {
			errs[i] = read[i] ^ truthBits[i]
		}
		return cap.DecodePage(errs, userBits)
	}
	worstWL, worstGap := 0, -1.0
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl++ {
		if !decodableAtOptimum(wl) {
			continue
		}
		sense := chip.Sense(0, wl, sv, 0, uint64(wl)+9000)
		_, inf := eng.Infer(sense)
		gap := inf.Get(sv) - lab.OptimalOffset(0, wl, sv)
		if gap < 0 {
			gap = -gap
		}
		if gap > worstGap {
			worstGap, worstWL = gap, wl
		}
	}
	wl := worstWL
	truth := lab.OptimalOffset(0, wl, sv)
	fmt.Printf("wordline %d (layer %d): ground-truth optimal V%d offset = %.1f\n\n",
		wl, chip.LayerOf(wl), sv, truth)

	msb := chip.Coding().Bits() - 1
	pageErrs := func(o flash.Offsets, seed uint64) (int, bool) {
		read := chip.ReadPage(0, wl, msb, o, seed)
		truthBits := chip.TrueBits(0, wl, msb)
		errs := make(flash.Bitmap, len(read))
		for i := range errs {
			errs[i] = read[i] ^ truthBits[i]
		}
		n := 0
		for i := 0; i < userBits; i++ {
			if errs.Get(i) {
				n++
			}
		}
		return n, cap.DecodePage(errs, userBits)
	}

	// Step 0: default read.
	e0, ok0 := pageErrs(nil, 1)
	fmt.Printf("attempt 0 (defaults):        %4d raw errors, ECC %s\n", e0, okStr(ok0))
	if ok0 {
		fmt.Println("default read succeeded; nothing to calibrate on this block")
		return
	}

	// Step 1: inference from the failed read's sentinel errors.
	defSense := chip.Sense(0, wl, sv, 0, 2)
	d, inferred := eng.Infer(defSense)
	e1, ok1 := pageErrs(inferred, 3)
	fmt.Printf("attempt 1 (inferred):        %4d raw errors, ECC %s  "+
		"(d=%.4f -> V%d offset %.1f, truth %.1f)\n",
		e1, okStr(ok1), d, sv, inferred.Get(sv), truth)

	// Steps 2..: calibration while the read keeps failing.
	sentOfs := inferred.Get(sv)
	cur := inferred
	for step := 1; !ok1 && step <= eng.Cal.MaxSteps; step++ {
		curSense := chip.Sense(0, wl, sv, sentOfs, uint64(step)*31)
		nca := defSense.XorCount(curSense)
		ncs := 0
		for _, idx := range eng.Indices() {
			if defSense.Get(idx) != curSense.Get(idx) {
				ncs++
			}
		}
		caseName := "case 2 (overshoot, back off)"
		if float64(nca) > float64(ncs)/eng.Ratio() {
			caseName = "case 1 (undershoot, go further)"
		}
		sentOfs, cur = eng.CalibrationStep(sentOfs, defSense, curSense)
		var e int
		e, ok1 = pageErrs(cur, uint64(step)*97)
		fmt.Printf("attempt %d (calibrated):      %4d raw errors, ECC %s  "+
			"(NCa=%d, NCs/r=%.0f -> %s, V%d offset %.1f)\n",
			step+1, e, okStr(ok1), nca, float64(ncs)/eng.Ratio(), caseName,
			sv, sentOfs)
	}
	opt := lab.OptimalOffsets(0, wl)
	eOpt, _ := pageErrs(opt, 999)
	fmt.Printf("\nreference (true optimal voltages): %d raw errors\n", eOpt)

	_ = sentinel.DefaultCalibrator()
}

func okStr(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
